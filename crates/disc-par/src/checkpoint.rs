//! Crash-safe shard journal for resumable campaigns.
//!
//! A long campaign (soak runs, parameter sweeps) is a map of a pure
//! function over independent shards. If the process dies mid-campaign —
//! OOM kill, pre-emption, a plain `kill -9` — every completed shard is
//! lost and the whole map starts over. The [`Journal`] fixes that: each
//! completed shard is appended to an on-disk journal the moment it
//! finishes, and [`par_map_resumable`] replays journalled shards from
//! disk instead of recomputing them.
//!
//! The journal is designed around the only failure mode appending can
//! have: a torn final record. Every record carries its own checksum
//! (the workspace-standard [`disc_snap::checksum`]), so on resume the
//! loader keeps the longest valid prefix, truncates the tear, and the
//! campaign re-runs exactly the shards that never landed. A journal
//! whose header fingerprint does not match the resuming campaign is
//! refused outright — resuming shard results into a differently
//! configured campaign would silently corrupt it.
//!
//! ## On-disk layout (all integers little-endian u64)
//!
//! ```text
//! magic "DISCJRNL" | len + "disc-journal/v1" | campaign fingerprint
//! repeated records:
//!   shard index | payload len | payload bytes | checksum(index ++ payload)
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use disc_snap::checksum;

/// Magic bytes opening every journal file.
pub const JOURNAL_MAGIC: [u8; 8] = *b"DISCJRNL";

/// Format tag written after the magic; bumped on layout changes.
pub const JOURNAL_FORMAT: &str = "disc-journal/v1";

/// Why a journal could not be opened.
#[derive(Debug)]
pub enum JournalError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The file exists but is not a journal (bad magic) or is a journal
    /// of an incompatible format version.
    Format(String),
    /// The journal's campaign fingerprint does not match the resuming
    /// campaign — its shards belong to a different configuration.
    Mismatch {
        /// Fingerprint recorded in the journal header.
        found: u64,
        /// Fingerprint of the campaign trying to resume.
        expected: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
            JournalError::Format(msg) => write!(f, "not a usable journal: {msg}"),
            JournalError::Mismatch { found, expected } => write!(
                f,
                "journal belongs to a different campaign \
                 (fingerprint {found:#018x}, expected {expected:#018x}); \
                 delete it or point --checkpoint elsewhere"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Checksum guarding one record: covers the shard index as well as the
/// payload, so an index corrupted on disk cannot graft a valid payload
/// onto the wrong shard.
fn record_checksum(index: u64, payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&index.to_le_bytes());
    buf.extend_from_slice(payload);
    checksum(&buf)
}

/// An append-only journal of completed campaign shards.
///
/// Opened fresh with [`Journal::create`] or re-opened for resumption
/// with [`Journal::resume`]; thereafter shared by reference across
/// worker threads — [`Journal::record`] serialises appends internally
/// and flushes each record to the OS before returning, so a record
/// survives any subsequent crash of this process.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    loaded: BTreeMap<u64, Vec<u8>>,
}

impl Journal {
    /// Creates (or truncates) a journal for a campaign with the given
    /// fingerprint. Parent directories are created as needed.
    pub fn create(path: &Path, fingerprint: u64) -> Result<Journal, JournalError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut file = File::create(path)?;
        let mut header = Vec::new();
        header.extend_from_slice(&JOURNAL_MAGIC);
        header.extend_from_slice(&(JOURNAL_FORMAT.len() as u64).to_le_bytes());
        header.extend_from_slice(JOURNAL_FORMAT.as_bytes());
        header.extend_from_slice(&fingerprint.to_le_bytes());
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            loaded: BTreeMap::new(),
        })
    }

    /// Re-opens an existing journal, loading every intact record.
    ///
    /// The longest valid prefix of records wins: scanning stops at the
    /// first torn or checksum-failing record (the expected aftermath of
    /// a crash mid-append) and the file is truncated back to the end of
    /// the last good record so later appends extend a clean journal. A
    /// missing file is not an error — it degrades to [`Journal::create`]
    /// so `--resume` also works on the very first run of a campaign.
    pub fn resume(path: &Path, fingerprint: u64) -> Result<Journal, JournalError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Journal::create(path, fingerprint);
            }
            Err(e) => return Err(e.into()),
        };
        let (loaded, good_len) = parse_journal(&bytes, fingerprint)?;
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(good_len as u64)?;
        let mut file = file;
        use std::io::Seek;
        file.seek(io::SeekFrom::End(0))?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            loaded,
        })
    }

    /// Shards loaded from disk on [`Journal::resume`], keyed by shard
    /// index. Empty for a freshly created journal.
    pub fn loaded(&self) -> &BTreeMap<u64, Vec<u8>> {
        &self.loaded
    }

    /// Where the journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed shard and flushes it to the OS. Safe to
    /// call concurrently from worker threads.
    pub fn record(&self, index: u64, payload: &[u8]) -> io::Result<()> {
        let mut rec = Vec::with_capacity(24 + payload.len());
        rec.extend_from_slice(&index.to_le_bytes());
        rec.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        rec.extend_from_slice(payload);
        rec.extend_from_slice(&record_checksum(index, payload).to_le_bytes());
        let mut file = self.file.lock().expect("journal lock poisoned");
        file.write_all(&rec)?;
        file.sync_data()
    }
}

/// Parses a journal image: validates the header against `fingerprint`,
/// then collects records until the first torn or corrupt one. Returns
/// the record map and the byte length of the valid prefix.
fn parse_journal(
    bytes: &[u8],
    fingerprint: u64,
) -> Result<(BTreeMap<u64, Vec<u8>>, usize), JournalError> {
    let take_u64 = |at: usize| -> Option<u64> {
        bytes
            .get(at..at + 8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    };
    if bytes.len() < 8 || bytes[..8] != JOURNAL_MAGIC {
        return Err(JournalError::Format("bad magic".into()));
    }
    let tag_len = take_u64(8).ok_or_else(|| JournalError::Format("truncated header".into()))?;
    let tag_end = 16usize
        .checked_add(tag_len as usize)
        .filter(|&e| e + 8 <= bytes.len())
        .ok_or_else(|| JournalError::Format("truncated header".into()))?;
    let tag = &bytes[16..tag_end];
    if tag != JOURNAL_FORMAT.as_bytes() {
        return Err(JournalError::Format(format!(
            "format tag {:?}, expected {JOURNAL_FORMAT:?}",
            String::from_utf8_lossy(tag)
        )));
    }
    let found = take_u64(tag_end).expect("bounds checked above");
    if found != fingerprint {
        return Err(JournalError::Mismatch {
            found,
            expected: fingerprint,
        });
    }

    let mut loaded = BTreeMap::new();
    let mut at = tag_end + 8;
    // A record needs at least index + len + checksum; anything shorter
    // at the tail is a torn append — keep the prefix.
    while let Some(index) = take_u64(at) {
        let Some(len) = take_u64(at + 8) else { break };
        let Some(end) = (at + 16).checked_add(len as usize) else {
            break;
        };
        if end + 8 > bytes.len() {
            break;
        }
        let payload = &bytes[at + 16..end];
        let Some(sum) = take_u64(end) else { break };
        if sum != record_checksum(index, payload) {
            break;
        }
        loaded.insert(index, payload.to_vec());
        at = end + 8;
    }
    Ok((loaded, at))
}

/// How a resumable map's shards were satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeStats {
    /// Total shards in the campaign.
    pub total: usize,
    /// Shards replayed from the journal.
    pub loaded: usize,
    /// Shards executed (and journalled) this run.
    pub executed: usize,
}

/// [`crate::par_map`] with crash resumption: shards already present in
/// `journal` are decoded from disk instead of recomputed, the rest run
/// in parallel and are journalled the moment each completes.
///
/// `decode` turns a journalled payload back into a result — returning
/// `None` (stale encoding, version drift) simply re-runs that shard.
/// `encode` is the inverse, run on the worker that produced the result.
/// Journalled indices outside `0..items.len()` are ignored.
///
/// # Panics
///
/// Panics when a journal append fails — continuing would complete the
/// campaign while silently losing its crash safety — or when `f` panics.
pub fn par_map_resumable<T, R, F, E, D>(
    items: Vec<T>,
    journal: &Journal,
    f: F,
    encode: E,
    decode: D,
) -> (Vec<R>, ResumeStats)
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
    E: Fn(&R) -> Vec<u8> + Sync,
    D: Fn(&[u8]) -> Option<R>,
{
    let total = items.len();
    let mut slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
    for (&index, payload) in journal.loaded() {
        if let Ok(i) = usize::try_from(index) {
            if i < total {
                slots[i] = decode(payload);
            }
        }
    }
    let loaded = slots.iter().filter(|s| s.is_some()).count();

    let missing: Vec<(usize, T)> = items
        .into_iter()
        .enumerate()
        .filter(|(i, _)| slots[*i].is_none())
        .collect();
    let executed = missing.len();
    let fresh = crate::par_map(missing, |(i, item)| {
        let result = f(item);
        journal
            .record(i as u64, &encode(&result))
            .expect("checkpoint journal append failed");
        (i, result)
    });
    for (i, result) in fresh {
        slots[i] = Some(result);
    }

    let results = slots
        .into_iter()
        .map(|s| s.expect("every shard loaded or executed"))
        .collect();
    (
        results,
        ResumeStats {
            total,
            loaded,
            executed,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("disc-journal-{}-{name}", std::process::id()))
    }

    fn enc(v: &u64) -> Vec<u8> {
        v.to_le_bytes().to_vec()
    }

    fn dec(b: &[u8]) -> Option<u64> {
        b.try_into().ok().map(u64::from_le_bytes)
    }

    #[test]
    fn fresh_run_then_resume_replays_everything() {
        let path = tmp("fresh");
        let journal = Journal::create(&path, 0xfeed).unwrap();
        let items: Vec<u64> = (0..10).collect();
        let (out, stats) = par_map_resumable(items.clone(), &journal, |x| x * x, enc, dec);
        assert_eq!(out, (0..10).map(|x| x * x).collect::<Vec<u64>>());
        assert_eq!(
            stats,
            ResumeStats {
                total: 10,
                loaded: 0,
                executed: 10
            }
        );

        let journal = Journal::resume(&path, 0xfeed).unwrap();
        assert_eq!(journal.loaded().len(), 10);
        let (out2, stats2) = par_map_resumable(
            items,
            &journal,
            |_| panic!("nothing should execute on a full journal"),
            enc,
            dec,
        );
        assert_eq!(out2, out);
        assert_eq!(stats2.loaded, 10);
        assert_eq!(stats2.executed, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_recomputed() {
        let path = tmp("torn");
        let journal = Journal::create(&path, 1).unwrap();
        journal.record(0, &enc(&7)).unwrap();
        journal.record(1, &enc(&8)).unwrap();
        drop(journal);
        // Simulate a crash mid-append: half a record of garbage.
        let mut bytes = std::fs::read(&path).unwrap();
        let intact = bytes.len();
        bytes.extend_from_slice(&[2, 0, 0, 0, 0, 0]);
        std::fs::write(&path, &bytes).unwrap();

        let journal = Journal::resume(&path, 1).unwrap();
        assert_eq!(journal.loaded().len(), 2);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact as u64);
        // Appending after truncation lands on a clean journal.
        journal.record(2, &enc(&9)).unwrap();
        drop(journal);
        let journal = Journal::resume(&path, 1).unwrap();
        assert_eq!(journal.loaded().len(), 3);
        assert_eq!(dec(&journal.loaded()[&2]), Some(9));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_drops_it_and_its_suffix() {
        let path = tmp("corrupt");
        let journal = Journal::create(&path, 2).unwrap();
        for i in 0..4u64 {
            journal.record(i, &enc(&(i + 100))).unwrap();
        }
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of record 1 (header 47 bytes, record 32).
        let hdr = 8 + 8 + JOURNAL_FORMAT.len() + 8;
        bytes[hdr + 32 + 16] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let journal = Journal::resume(&path, 2).unwrap();
        // Conservative prefix: record 0 survives, 1..4 re-run.
        assert_eq!(journal.loaded().len(), 1);
        let (out, stats) = par_map_resumable((0..4u64).collect(), &journal, |x| x + 100, enc, dec);
        assert_eq!(out, vec![100, 101, 102, 103]);
        assert_eq!(stats.loaded, 1);
        assert_eq!(stats.executed, 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_fingerprint_is_refused() {
        let path = tmp("fpr");
        Journal::create(&path, 3).unwrap();
        let err = Journal::resume(&path, 4).unwrap_err();
        assert!(matches!(
            err,
            JournalError::Mismatch {
                found: 3,
                expected: 4
            }
        ));
        assert!(err.to_string().contains("different campaign"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_journal_file_is_refused() {
        let path = tmp("junk");
        std::fs::write(&path, b"not a journal at all").unwrap();
        assert!(matches!(
            Journal::resume(&path, 0),
            Err(JournalError::Format(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_on_a_missing_file_creates_it() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::resume(&path, 5).unwrap();
        assert!(journal.loaded().is_empty());
        journal.record(0, b"x").unwrap();
        std::fs::remove_file(&path).unwrap();
    }
}
