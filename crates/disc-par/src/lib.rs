//! Deterministic parallel map for the experiment layer.
//!
//! The stochastic evaluation grinds through hundreds of independent
//! simulator runs (seeds × table cells × sweep points). Each run is a
//! pure function of its configuration, so they parallelise trivially —
//! but the build environment carries no external crates, so this is a
//! minimal [`std::thread::scope`]-based work pool instead of rayon.
//!
//! Guarantees:
//!
//! * **Deterministic output.** Results are written into an index-keyed
//!   slot table, so the returned `Vec` is in input order no matter how
//!   the OS schedules the workers. Printing happens only after the map
//!   completes, never from worker threads.
//! * **No nested oversubscription.** A `par_map` issued from inside a
//!   worker thread (e.g. `simulate_seeds` called from a parallel table
//!   cell) runs serially on that worker.
//! * **Tunable.** `DISC_JOBS=n` caps the worker count; `DISC_JOBS=1`
//!   forces fully serial execution (useful when bisecting).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod checkpoint;

pub use checkpoint::{par_map_resumable, Journal, JournalError, ResumeStats};

thread_local! {
    static IN_PAR: Cell<bool> = const { Cell::new(false) };
}

/// Parses a `DISC_JOBS` value: a positive integer, or an explanation of
/// why it is not one.
fn parse_jobs(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        Ok(_) => Err(format!(
            "DISC_JOBS={raw:?} must be at least 1 (use DISC_JOBS=1 for serial execution)"
        )),
        Err(_) => Err(format!("DISC_JOBS={raw:?} is not a positive integer")),
    }
}

/// Number of worker threads a top-level [`par_map`] may use: the
/// `DISC_JOBS` environment variable when set, otherwise the machine's
/// available parallelism.
///
/// # Panics
///
/// Panics when `DISC_JOBS` is set but is not a positive integer. A
/// mistyped cap used to fall back silently to full parallelism, which
/// defeats the point of setting it (e.g. when bisecting with
/// `DISC_JOBS=1`), so it is now a hard error.
pub fn max_jobs() -> usize {
    if let Ok(v) = std::env::var("DISC_JOBS") {
        match parse_jobs(&v) {
            Ok(n) => return n,
            Err(msg) => panic!("{msg}"),
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to [`max_jobs`] scoped threads, returning
/// results in input order.
///
/// Work is handed out through a shared atomic cursor, so long and short
/// items balance across workers. Falls back to a plain serial map when
/// there is at most one job, at most one item, or the caller is itself a
/// `par_map` worker (nested maps stay serial by design).
///
/// # Panics
///
/// Propagates a panic from `f` once all workers have finished.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let jobs = max_jobs().min(n);
    if jobs <= 1 || IN_PAR.with(|c| c.get()) {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| {
                IN_PAR.with(|c| c.set(true));
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("work item claimed twice");
                    let r = f(item);
                    *out[i].lock().expect("result slot poisoned") = Some(r);
                }
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped an item")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = par_map((0..1000).collect(), |i: u64| i * 3);
        assert_eq!(out, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn nested_maps_run_and_stay_ordered() {
        let out = par_map((0u64..16).collect(), |i| {
            // Inner map runs serially on this worker but must still be
            // correct and ordered.
            par_map((0u64..8).collect(), move |j| i * 100 + j)
        });
        for (i, inner) in out.iter().enumerate() {
            let want: Vec<u64> = (0..8).map(|j| i as u64 * 100 + j).collect();
            assert_eq!(inner, &want);
        }
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still land in the right slots.
        let out = par_map((0u64..64).collect(), |i| {
            let spins = if i % 7 == 0 { 200_000 } else { 10 };
            let mut acc = i;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        for (i, (orig, _)) in out.iter().enumerate() {
            assert_eq!(*orig, i as u64);
        }
    }

    #[test]
    fn max_jobs_is_positive() {
        assert!(max_jobs() >= 1);
    }

    #[test]
    fn jobs_values_parse_or_explain() {
        assert_eq!(parse_jobs("4"), Ok(4));
        assert_eq!(parse_jobs(" 2 "), Ok(2));
        assert!(parse_jobs("0").unwrap_err().contains("at least 1"));
        assert!(parse_jobs("many")
            .unwrap_err()
            .contains("not a positive integer"));
        assert!(parse_jobs("-3").is_err());
    }
}
