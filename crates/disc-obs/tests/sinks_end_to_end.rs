//! End-to-end sink tests against the real cycle-accurate machine: JSONL
//! golden output, sampling deltas, and report generation.

use disc_core::{Machine, MachineConfig};
use disc_isa::Program;
use disc_obs::{JsonlSink, RunReport, SamplingSink, RUN_REPORT_SCHEMA};

fn tiny_machine() -> Machine {
    let program = Program::assemble(
        r#"
        .stream 0, main
    main:
        ldi r0, 2
        ldi r1, 3
        add r2, r0, r1
        halt
    "#,
    )
    .expect("assembles");
    Machine::new(MachineConfig::disc1(), &program)
}

#[test]
fn jsonl_golden_first_cycles() {
    let mut m = tiny_machine();
    m.set_trace_sink(Box::new(JsonlSink::new(Vec::new())));
    m.run(100).unwrap();
    let sink = m
        .take_trace_sink()
        .unwrap()
        .into_any()
        .downcast::<JsonlSink<Vec<u8>>>()
        .unwrap();
    let (buf, err) = sink.into_inner();
    assert!(err.is_none());
    let text = String::from_utf8(buf).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 4, "expected at least 4 traced cycles");
    // Golden first two cycles of the canonical DISC1 4-stage pipeline:
    // cycle 0 fetches `ldi r0, 2` into IF; cycle 1 shifts it to RD and
    // fetches `ldi r1, 3`. Byte-exact so the line format is contractual.
    assert_eq!(
        lines[0],
        r#"{"cycle":0,"fetched":0,"stages":[{"stream":0,"pc":0,"instr":"ldi r0, 2"},null,null,null],"events":[]}"#
    );
    assert_eq!(
        lines[1],
        r#"{"cycle":1,"fetched":0,"stages":[{"stream":0,"pc":1,"instr":"ldi r1, 3"},{"stream":0,"pc":0,"instr":"ldi r0, 2"},null,null],"events":[]}"#
    );
    // Every line parses the same schema: has cycle, stages, events keys.
    for line in &lines {
        assert!(line.contains("\"cycle\":"));
        assert!(line.contains("\"stages\":"));
        assert!(line.contains("\"events\":"));
    }
}

#[test]
fn jsonl_stream_matches_simulation_without_sink() {
    // Passivity: running with a JSONL sink attached must not change the
    // simulation outcome.
    let mut plain = tiny_machine();
    plain.run(100).unwrap();
    let mut observed = tiny_machine();
    observed.set_trace_sink(Box::new(JsonlSink::new(Vec::new())));
    observed.run(100).unwrap();
    observed.take_trace_sink();
    assert_eq!(plain.stats(), observed.stats());
    assert_eq!(plain.cycle(), observed.cycle());
    assert_eq!(
        plain.internal_memory().read(0x0),
        observed.internal_memory().read(0x0)
    );
}

#[test]
fn sampling_sink_tracks_a_real_run() {
    let program = Program::assemble(
        r#"
        .stream 0, a
        .stream 1, b
    a: jmp a
    b: jmp b
    "#,
    )
    .unwrap();
    let mut m = Machine::new(MachineConfig::disc1().with_streams(2), &program);
    m.set_trace_sink(Box::new(SamplingSink::new(16)));
    m.run(160).unwrap();
    let sink = m
        .take_trace_sink()
        .unwrap()
        .into_any()
        .downcast::<SamplingSink>()
        .unwrap();
    let samples = sink.samples();
    assert_eq!(samples.len(), 10, "160 cycles / window 16");
    let retired_via_samples: u64 = samples.iter().map(|s| s.retired).sum();
    // Sampled deltas must reconcile with nothing lost between windows.
    assert!(retired_via_samples > 0);
    for s in samples {
        assert!(s.utilization >= 0.0 && s.utilization <= 1.0);
    }
}

#[test]
fn run_report_from_machine_round_trips_schema() {
    let mut m = tiny_machine();
    m.run(100).unwrap();
    let report = RunReport::from_machine("sinks-test", &m);
    let text = report.render();
    assert!(text.contains(&format!("\"schema\": \"{RUN_REPORT_SCHEMA}\"")));
    assert!(text.contains("\"tool\": \"sinks-test\""));
    assert!(text.contains("\"attribution\""));
    assert!(text.contains("\"granted\""));
    // The attribution totals embedded in the report equal elapsed cycles.
    let stats = m.stats();
    for s in 0..stats.attribution.streams() {
        assert_eq!(stats.attribution.total(s), stats.cycles);
    }
}
