//! A dependency-free JSON value tree with deterministic rendering.
//!
//! The repo's policy is no external crates beyond the vendored stand-ins,
//! so structured output (like `BENCH_core.json` before it) is rendered by
//! hand. This module centralizes that: build a [`Json`] tree, render it
//! compact (JSONL) or pretty (reports). Object keys keep insertion order
//! so output is byte-stable run to run.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (the common case for counters).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float; non-finite values render as `null` since JSON has no NaN.
    F64(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience object constructor from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Array of unsigned counters.
    pub fn u64s(values: impl IntoIterator<Item = u64>) -> Json {
        Json::Arr(values.into_iter().map(Json::U64).collect())
    }

    /// Appends a key to this value if it is an object; panics otherwise.
    pub fn push(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Renders on one line with no extraneous whitespace (JSONL form).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // `{:?}` round-trips f64 exactly and always includes a
                    // decimal point or exponent, keeping the value a JSON
                    // number distinguishable from an integer.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_is_single_line() {
        let j = Json::obj([
            ("a", Json::U64(1)),
            ("b", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("c", Json::str("x\"y\n")),
        ]);
        assert_eq!(j.render(), r#"{"a":1,"b":[null,true],"c":"x\"y\n"}"#);
    }

    #[test]
    fn pretty_rendering_indents_and_terminates() {
        let j = Json::obj([("k", Json::u64s([1, 2]))]);
        assert_eq!(j.render_pretty(), "{\n  \"k\": [\n    1,\n    2\n  ]\n}\n");
    }

    #[test]
    fn floats_render_finite_or_null() {
        assert_eq!(Json::F64(0.5).render(), "0.5");
        assert_eq!(Json::F64(2.0).render(), "2.0");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn control_characters_escape() {
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }
}
