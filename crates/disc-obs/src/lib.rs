//! Observability layer for the DISC simulator.
//!
//! The paper's claims are measurement claims — processor utilization
//! (`PD`), per-stream partition shares, interrupt-latency bounds — so the
//! simulator needs instrumentation that is auditable, not just a flat
//! counter block. This crate provides the pieces that sit *outside* the
//! cycle-accurate core:
//!
//! - **Streaming sinks** ([`JsonlSink`], [`SamplingSink`]) implementing
//!   [`disc_core::TraceSink`], attached with
//!   [`Machine::set_trace_sink`](disc_core::Machine::set_trace_sink).
//!   The JSONL sink serializes every traced cycle as one JSON line; the
//!   sampling sink snapshots [`disc_core::MachineStats`] deltas every N
//!   cycles and never pays for record assembly.
//! - **Structured run reports** ([`RunReport`], schema
//!   [`RUN_REPORT_SCHEMA`]): schema-versioned JSON summaries with a
//!   deterministic [`config_fingerprint`], full stats including the
//!   per-stream [`disc_core::CycleAttribution`], and scheduler grant
//!   shares — written under `results/` by `repro_all`, `soak`, the
//!   sweeps and the `obs_demo` example, and schema-checked in CI.
//! - **A dependency-free JSON tree** ([`Json`]) shared by both, since
//!   the build environment has no serde.
//!
//! Observability is passive by construction: sinks observe the record
//! the machine was already assembling, and the attribution profiler
//! lives in the core's existing accounting pass — simulation results are
//! byte-identical with or without any of this attached.

pub mod json;
pub mod report;
pub mod sink;

pub use json::Json;
pub use report::{
    attribution_json, config_fingerprint, config_json, scheduler_json, stats_json, step_mode_name,
    timing_json, RunReport, RUN_REPORT_SCHEMA,
};
pub use sink::{cycle_json, event_json, JsonlSink, SamplingSink, StatsSample};
