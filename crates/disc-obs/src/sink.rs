//! Streaming [`TraceSink`] implementations: JSONL event streams and
//! counters-only sampling.
//!
//! The bounded ring buffer ([`disc_core::Trace`]) keeps the *last* N
//! cycles; these sinks instead observe *every* cycle as it happens —
//! [`JsonlSink`] serializes each [`CycleRecord`] to one JSON line, and
//! [`SamplingSink`] skips record assembly entirely (via
//! [`TraceSink::wants_records`]) and snapshots [`MachineStats`] deltas
//! every N cycles.

use std::io::{self, Write};

use disc_core::{CycleRecord, MachineStats, TraceEvent, TraceSink};

use crate::json::Json;

/// Serializes every traced cycle as one JSON object per line.
///
/// Writes are buffered by whatever `W` the caller supplies; an I/O error
/// latches (subsequent records are dropped) and is reported by
/// [`JsonlSink::into_inner`] so a full disk cannot panic the simulation.
pub struct JsonlSink<W: Write + 'static> {
    writer: W,
    error: Option<io::Error>,
    lines: u64,
}

impl<W: Write + 'static> JsonlSink<W> {
    /// Wraps `writer`; each traced cycle becomes one line of JSON.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            error: None,
            lines: 0,
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Unwraps the writer and any latched I/O error.
    pub fn into_inner(self) -> (W, Option<io::Error>) {
        (self.writer, self.error)
    }
}

impl<W: Write + 'static> TraceSink for JsonlSink<W> {
    fn record_cycle(&mut self, record: CycleRecord) {
        if self.error.is_some() {
            return;
        }
        let line = cycle_json(&record).render();
        match writeln!(self.writer, "{line}") {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn finish(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// Renders one [`CycleRecord`] as a JSON object (the JSONL line format).
pub fn cycle_json(record: &CycleRecord) -> Json {
    let stages = record
        .stages
        .iter()
        .map(|slot| match slot {
            None => Json::Null,
            Some(s) => Json::obj([
                ("stream", Json::U64(s.stream as u64)),
                ("pc", Json::U64(u64::from(s.pc))),
                ("instr", Json::str(s.instr.to_string())),
            ]),
        })
        .collect();
    Json::obj([
        ("cycle", Json::U64(record.cycle)),
        (
            "fetched",
            match record.fetched {
                Some(s) => Json::U64(s as u64),
                None => Json::Null,
            },
        ),
        ("stages", Json::Arr(stages)),
        (
            "events",
            Json::Arr(record.events.iter().map(event_json).collect()),
        ),
    ])
}

/// Renders one [`TraceEvent`] as a JSON object with a `"type"` tag.
pub fn event_json(event: &TraceEvent) -> Json {
    match event {
        TraceEvent::Flush {
            stream,
            count,
            cause,
        } => Json::obj([
            ("type", Json::str("flush")),
            ("stream", Json::U64(*stream as u64)),
            ("count", Json::U64(*count as u64)),
            ("cause", Json::str(*cause)),
        ]),
        TraceEvent::BusStart {
            stream,
            addr,
            latency,
        } => Json::obj([
            ("type", Json::str("bus-start")),
            ("stream", Json::U64(*stream as u64)),
            ("addr", Json::U64(u64::from(*addr))),
            ("latency", Json::U64(u64::from(*latency))),
        ]),
        TraceEvent::BusComplete { stream } => Json::obj([
            ("type", Json::str("bus-complete")),
            ("stream", Json::U64(*stream as u64)),
        ]),
        TraceEvent::Vector {
            stream,
            bit,
            target,
        } => Json::obj([
            ("type", Json::str("vector")),
            ("stream", Json::U64(*stream as u64)),
            ("bit", Json::U64(u64::from(*bit))),
            ("target", Json::U64(u64::from(*target))),
        ]),
        TraceEvent::BusFault { stream, addr, kind } => Json::obj([
            ("type", Json::str("bus-fault")),
            ("stream", Json::U64(*stream as u64)),
            ("addr", Json::U64(u64::from(*addr))),
            ("kind", Json::str(kind.to_string())),
        ]),
        TraceEvent::Spill { stream, cycles } => Json::obj([
            ("type", Json::str("spill")),
            ("stream", Json::U64(*stream as u64)),
            ("cycles", Json::U64(u64::from(*cycles))),
        ]),
        TraceEvent::Retire { stream, pc } => Json::obj([
            ("type", Json::str("retire")),
            ("stream", Json::U64(*stream as u64)),
            ("pc", Json::U64(u64::from(*pc))),
        ]),
    }
}

/// One counters snapshot taken by [`SamplingSink`]: deltas over the
/// sampling window ending at `cycle`.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSample {
    /// Cycle the window ends on (inclusive).
    pub cycle: u64,
    /// Instructions retired in the window.
    pub retired: u64,
    /// Bubble cycles in the window.
    pub bubbles: u64,
    /// Instructions flushed in the window.
    pub flushed: u64,
    /// External bus transactions issued in the window.
    pub external_accesses: u64,
    /// Scheduler reallocations in the window.
    pub reallocations: u64,
    /// Windowed utilization: retired / window length.
    pub utilization: f64,
}

/// Counters-only sink: snapshots [`MachineStats`] deltas every `every`
/// cycles without ever paying for [`CycleRecord`] assembly.
pub struct SamplingSink {
    every: u64,
    samples: Vec<StatsSample>,
    last_cycle: u64,
    last_retired: u64,
    last_bubbles: u64,
    last_flushed: u64,
    last_external: u64,
    last_realloc: u64,
}

impl SamplingSink {
    /// Samples once every `every` cycles (`every` is clamped to at
    /// least 1).
    pub fn new(every: u64) -> Self {
        SamplingSink {
            every: every.max(1),
            samples: Vec::new(),
            last_cycle: 0,
            last_retired: 0,
            last_bubbles: 0,
            last_flushed: 0,
            last_external: 0,
            last_realloc: 0,
        }
    }

    /// The collected samples, oldest first.
    pub fn samples(&self) -> &[StatsSample] {
        &self.samples
    }

    /// Renders the samples as a JSON array.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.samples
                .iter()
                .map(|s| {
                    Json::obj([
                        ("cycle", Json::U64(s.cycle)),
                        ("retired", Json::U64(s.retired)),
                        ("bubbles", Json::U64(s.bubbles)),
                        ("flushed", Json::U64(s.flushed)),
                        ("external_accesses", Json::U64(s.external_accesses)),
                        ("reallocations", Json::U64(s.reallocations)),
                        ("utilization", Json::F64(s.utilization)),
                    ])
                })
                .collect(),
        )
    }
}

impl TraceSink for SamplingSink {
    fn wants_records(&self) -> bool {
        false
    }

    fn record_cycle(&mut self, _record: CycleRecord) {}

    // Only window boundaries matter (the samples are deltas of
    // cumulative counters), so quiescent stretches between boundaries may
    // be skipped without loss.
    fn next_observe(&self, now: u64) -> Option<u64> {
        Some((now + 1).next_multiple_of(self.every) - 1)
    }

    fn observe_stats(&mut self, cycle: u64, stats: &MachineStats) {
        // `cycle` is 0-based; sample when the window boundary passes.
        if !(cycle + 1).is_multiple_of(self.every) {
            return;
        }
        let window = (cycle + 1) - self.last_cycle;
        let retired = stats.retired_total();
        let flushed = stats.flushed_total();
        self.samples.push(StatsSample {
            cycle,
            retired: retired - self.last_retired,
            bubbles: stats.bubbles - self.last_bubbles,
            flushed: flushed - self.last_flushed,
            external_accesses: stats.external_accesses - self.last_external,
            reallocations: stats.reallocations - self.last_realloc,
            utilization: (retired - self.last_retired) as f64 / window.max(1) as f64,
        });
        self.last_cycle = cycle + 1;
        self.last_retired = retired;
        self.last_bubbles = stats.bubbles;
        self.last_flushed = flushed;
        self.last_external = stats.external_accesses;
        self.last_realloc = stats.reallocations;
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disc_core::{CycleRecord, StageSnapshot};
    use disc_isa::Instruction;

    fn record(cycle: u64) -> CycleRecord {
        CycleRecord {
            cycle,
            stages: vec![
                Some(StageSnapshot {
                    stream: 1,
                    pc: 0x10,
                    instr: Instruction::Nop,
                }),
                None,
            ],
            fetched: Some(1),
            events: vec![TraceEvent::Flush {
                stream: 0,
                count: 2,
                cause: "jump",
            }],
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_cycle() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record_cycle(record(0));
        sink.record_cycle(record(1));
        sink.finish();
        assert_eq!(sink.lines(), 2);
        let (buf, err) = sink.into_inner();
        assert!(err.is_none());
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn jsonl_sink_latches_io_errors() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing);
        sink.record_cycle(record(0));
        sink.record_cycle(record(1));
        assert_eq!(sink.lines(), 0);
        let (_, err) = sink.into_inner();
        assert_eq!(err.unwrap().kind(), io::ErrorKind::Other);
    }

    #[test]
    fn sampling_sink_reports_window_deltas() {
        let mut sink = SamplingSink::new(10);
        assert!(!sink.wants_records());
        let mut stats = MachineStats::new(1);
        for cycle in 0..30u64 {
            stats.cycles = cycle + 1;
            stats.retired[0] += 1; // one instruction per cycle
            if cycle % 2 == 0 {
                stats.bubbles += 1;
            }
            sink.observe_stats(cycle, &stats);
        }
        let samples = sink.samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].cycle, 9);
        assert_eq!(samples[2].cycle, 29);
        for s in samples {
            assert_eq!(s.retired, 10);
            assert_eq!(s.bubbles, 5);
            assert!((s.utilization - 1.0).abs() < 1e-12);
        }
    }
}
