//! Schema-versioned structured run reports.
//!
//! Every experiment driver (`repro_all`, `soak`, the sweeps, `obs_demo`)
//! emits a [`RunReport`]: a JSON document carrying the report schema
//! version, the producing tool, a deterministic configuration
//! fingerprint, machine statistics with the per-stream cycle
//! attribution, scheduler grant shares, and any tool-specific sections.
//! CI checks every `results/*.report.json` against this schema, so the
//! shape here is a compatibility contract — bump [`RUN_REPORT_SCHEMA`]
//! when changing it.

use std::io;
use std::path::{Path, PathBuf};

use disc_core::{
    BusFaultPolicy, CycleAttribution, Machine, MachineConfig, MachineStats, SchedulePolicy,
    SkipStats, StepMode, WindowPolicy, ATTRIBUTION_BUCKETS,
};

use crate::json::Json;

/// Schema identifier stamped into every report.
///
/// `v2` extends `v1` with an optional `timing` section (step mode,
/// wall-clock simulation throughput, event-skip statistics). `v3`
/// extends `v2` with an optional `resume` section (checkpoint journal
/// accounting for crash-resumed campaigns). Every earlier field is
/// still present with the same shape, so readers that ignore unknown
/// sections keep working.
pub const RUN_REPORT_SCHEMA: &str = "disc-run-report/v3";

/// Deterministic 64-bit fingerprint of a machine configuration, rendered
/// as 16 hex digits. Delegates to [`MachineConfig::fingerprint`] — the
/// same value that pins `disc-snap/v1` machine snapshots to a compatible
/// configuration. Every field (including the full schedule contents)
/// folds into the hash, so two configs fingerprint equal iff they
/// simulate identically. [`MachineConfig::step_mode`] and
/// [`MachineConfig::dispatch_mode`] are deliberately *excluded*: they
/// change how fast the simulator walks the cycle count, never the
/// architectural outcome, so runs under any step/dispatch combination
/// must fingerprint (and therefore compare) equal.
pub fn config_fingerprint(config: &MachineConfig) -> String {
    format!("{:016x}", config.fingerprint())
}

/// Renders a [`MachineConfig`] (plus its fingerprint) as JSON.
pub fn config_json(config: &MachineConfig) -> Json {
    let schedule = match &config.schedule {
        SchedulePolicy::Sequence(slots) => Json::obj([
            ("policy", Json::str("sequence")),
            ("slots", Json::u64s(slots.iter().map(|&s| u64::from(s)))),
        ]),
        SchedulePolicy::WeightedDeficit(weights) => Json::obj([
            ("policy", Json::str("weighted-deficit")),
            ("weights", Json::u64s(weights.iter().map(|&w| u64::from(w)))),
        ]),
    };
    Json::obj([
        ("fingerprint", Json::str(config_fingerprint(config))),
        ("streams", Json::U64(config.streams as u64)),
        ("pipeline_depth", Json::U64(config.pipeline_depth as u64)),
        ("schedule", schedule),
        ("internal_words", Json::U64(config.internal_words as u64)),
        ("window_depth", Json::U64(config.window_depth as u64)),
        (
            "window_policy",
            Json::str(match config.window_policy {
                WindowPolicy::AutoSpill => "auto-spill",
                WindowPolicy::Fault => "fault",
            }),
        ),
        (
            "default_ext_latency",
            Json::U64(u64::from(config.default_ext_latency)),
        ),
        (
            "bus_fault",
            Json::str(match config.bus_fault {
                BusFaultPolicy::Legacy => "legacy",
                BusFaultPolicy::Fault => "fault",
            }),
        ),
        ("abi_timeout", Json::U64(config.abi_timeout)),
        ("bus_error_bit", Json::U64(u64::from(config.bus_error_bit))),
    ])
}

/// Renders a [`CycleAttribution`] as JSON: one array per bucket plus the
/// per-stream totals (each of which must equal the elapsed cycles).
pub fn attribution_json(attr: &CycleAttribution) -> Json {
    let mut obj = Json::obj([("buckets", {
        Json::Arr(ATTRIBUTION_BUCKETS.iter().map(|&b| Json::str(b)).collect())
    })]);
    let per_bucket: [(&str, &Vec<u64>); 7] = [
        ("issue", &attr.issue),
        ("hazard_stall", &attr.hazard_stall),
        ("bus_txn_wait", &attr.bus_txn_wait),
        ("bus_free_wait", &attr.bus_free_wait),
        ("spill_stall", &attr.spill_stall),
        ("idle", &attr.idle),
        ("not_scheduled", &attr.not_scheduled),
    ];
    for (name, values) in per_bucket {
        obj.push(name, Json::u64s(values.iter().copied()));
    }
    obj.push(
        "totals",
        Json::u64s((0..attr.streams()).map(|s| attr.total(s))),
    );
    obj
}

/// Renders [`MachineStats`] (including the attribution) as JSON.
pub fn stats_json(stats: &MachineStats) -> Json {
    Json::obj([
        ("cycles", Json::U64(stats.cycles)),
        ("retired", Json::u64s(stats.retired.iter().copied())),
        ("utilization", Json::F64(stats.utilization())),
        ("bubbles", Json::U64(stats.bubbles)),
        ("flushed_jump", Json::U64(stats.flushed_jump)),
        ("flushed_io", Json::U64(stats.flushed_io)),
        ("flushed_bus_busy", Json::U64(stats.flushed_bus_busy)),
        ("flushed_irq", Json::U64(stats.flushed_irq)),
        (
            "wait_txn_cycles",
            Json::u64s(stats.wait_txn_cycles.iter().copied()),
        ),
        (
            "wait_bus_free_cycles",
            Json::u64s(stats.wait_bus_free_cycles.iter().copied()),
        ),
        (
            "spill_stall_cycles",
            Json::u64s(stats.spill_stall_cycles.iter().copied()),
        ),
        (
            "hazard_stalls",
            Json::u64s(stats.hazard_stalls.iter().copied()),
        ),
        (
            "vectors_taken",
            Json::u64s(stats.vectors_taken.iter().copied()),
        ),
        (
            "irq_latency",
            Json::obj([
                ("count", Json::U64(stats.irq_latency.count())),
                (
                    "mean",
                    stats.irq_latency.mean().map_or(Json::Null, Json::F64),
                ),
                ("max", stats.irq_latency.max().map_or(Json::Null, Json::U64)),
            ]),
        ),
        ("reallocations", Json::U64(stats.reallocations)),
        ("flow_instructions", Json::U64(stats.flow_instructions)),
        ("external_accesses", Json::U64(stats.external_accesses)),
        ("unmapped_accesses", Json::U64(stats.unmapped_accesses)),
        ("abi_timeouts", Json::U64(stats.abi_timeouts)),
        ("bus_faults", Json::u64s(stats.bus_faults.iter().copied())),
        ("attribution", attribution_json(&stats.attribution)),
    ])
}

/// The canonical report string for a [`StepMode`].
pub fn step_mode_name(mode: StepMode) -> &'static str {
    match mode {
        StepMode::CycleByCycle => "cycle-by-cycle",
        StepMode::EventSkip => "event-skip",
    }
}

/// Renders the v2 `timing` section: step mode, wall-clock simulation
/// throughput, and event-skip statistics.
///
/// `sim_cycles_per_sec` is simulated cycles divided by wall-clock
/// seconds (pass `None` when the caller did not time the run);
/// `mean_skip` is null unless at least one skip happened.
pub fn timing_json(mode: StepMode, sim_cycles_per_sec: Option<f64>, skip: &SkipStats) -> Json {
    Json::obj([
        ("step_mode", Json::str(step_mode_name(mode))),
        (
            "sim_cycles_per_sec",
            sim_cycles_per_sec.map_or(Json::Null, Json::F64),
        ),
        ("skips", Json::U64(skip.skips)),
        ("cycles_skipped", Json::U64(skip.cycles_skipped)),
        ("mean_skip", skip.mean_skip().map_or(Json::Null, Json::F64)),
    ])
}

/// Scheduler grant/reallocation shares as JSON.
pub fn scheduler_json(granted: &[u64], reallocations: u64) -> Json {
    let total: u64 = granted.iter().sum();
    Json::obj([
        ("granted", Json::u64s(granted.iter().copied())),
        (
            "grant_share",
            Json::Arr(
                granted
                    .iter()
                    .map(|&g| Json::F64(g as f64 / total.max(1) as f64))
                    .collect(),
            ),
        ),
        ("reallocations", Json::U64(reallocations)),
    ])
}

/// A schema-versioned structured run summary, built section by section
/// and written under `results/`.
#[derive(Debug, Clone)]
pub struct RunReport {
    sections: Vec<(String, Json)>,
}

impl RunReport {
    /// Starts a report produced by `tool` (e.g. `"repro_all"`).
    pub fn new(tool: &str) -> Self {
        RunReport {
            sections: vec![
                ("schema".into(), Json::str(RUN_REPORT_SCHEMA)),
                ("tool".into(), Json::str(tool)),
            ],
        }
    }

    /// Appends a named section.
    pub fn section(mut self, name: &str, value: Json) -> Self {
        self.sections.push((name.into(), value));
        self
    }

    /// Appends the `config` section (fields + fingerprint).
    pub fn with_config(self, config: &MachineConfig) -> Self {
        self.section("config", config_json(config))
    }

    /// Appends the `stats` section (counters + attribution).
    pub fn with_stats(self, stats: &MachineStats) -> Self {
        self.section("stats", stats_json(stats))
    }

    /// Appends the `scheduler` section (grants, shares, reallocations).
    pub fn with_scheduler(self, granted: &[u64], reallocations: u64) -> Self {
        self.section("scheduler", scheduler_json(granted, reallocations))
    }

    /// Appends the v2 `timing` section (step mode, throughput, skips).
    pub fn with_timing(
        self,
        mode: StepMode,
        sim_cycles_per_sec: Option<f64>,
        skip: &SkipStats,
    ) -> Self {
        self.section("timing", timing_json(mode, sim_cycles_per_sec, skip))
    }

    /// Appends the v3 `resume` section: how a crash-resumable campaign's
    /// shards were satisfied — replayed from a checkpoint journal versus
    /// executed in this invocation — and where that journal lives.
    pub fn with_resume(self, shards_loaded: u64, shards_executed: u64, journal: &str) -> Self {
        self.section(
            "resume",
            Json::obj([
                ("shards_loaded", Json::U64(shards_loaded)),
                ("shards_executed", Json::U64(shards_executed)),
                ("journal", Json::str(journal)),
            ]),
        )
    }

    /// Captures config, stats, scheduler shares, and timing (step mode
    /// plus skip statistics; throughput null) straight off a finished
    /// machine.
    pub fn from_machine(tool: &str, machine: &Machine) -> Self {
        Self::from_machine_timed(tool, machine, None)
    }

    /// Like [`RunReport::from_machine`], but derives the timing
    /// section's `sim_cycles_per_sec` from the measured wall-clock
    /// seconds the run took.
    pub fn from_machine_timed(tool: &str, machine: &Machine, wall_secs: Option<f64>) -> Self {
        let throughput = wall_secs
            .filter(|&s| s > 0.0)
            .map(|s| machine.stats().cycles as f64 / s);
        RunReport::new(tool)
            .with_config(machine.config())
            .with_stats(machine.stats())
            .with_scheduler(
                machine.scheduler_grants(),
                machine.scheduler_reallocations(),
            )
            .with_timing(machine.config().step_mode, throughput, machine.skip_stats())
    }

    /// The report as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Obj(self.sections.clone())
    }

    /// The report rendered as pretty-printed JSON.
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Writes the report as `<dir>/<name>.report.json`, creating `dir`
    /// if needed, and returns the path written.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-write failures.
    pub fn write_under(&self, dir: impl AsRef<Path>, name: &str) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.report.json"));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let base = MachineConfig::disc1();
        let fp = config_fingerprint(&base);
        assert_eq!(fp.len(), 16);
        assert_eq!(fp, config_fingerprint(&MachineConfig::disc1()));
        let other = MachineConfig::disc1().with_streams(2);
        assert_ne!(fp, config_fingerprint(&other));
        // Schedule *contents* matter, not just the variant.
        let seq_a =
            MachineConfig::disc1().with_schedule(SchedulePolicy::Sequence(vec![0, 1, 2, 3]));
        let seq_b =
            MachineConfig::disc1().with_schedule(SchedulePolicy::Sequence(vec![0, 1, 3, 2]));
        assert_ne!(config_fingerprint(&seq_a), config_fingerprint(&seq_b));
    }

    #[test]
    fn report_carries_schema_and_sections() {
        let stats = MachineStats::new(2);
        let report = RunReport::new("unit-test")
            .with_config(&MachineConfig::disc1())
            .with_stats(&stats)
            .with_scheduler(&[3, 1], 0)
            .with_timing(StepMode::CycleByCycle, Some(1.5e6), &SkipStats::default())
            .with_resume(3, 7, "results/ckpt/soak.journal")
            .section("extra", Json::U64(7));
        let text = report.render();
        assert!(text.contains("\"schema\": \"disc-run-report/v3\""));
        assert!(text.contains("\"shards_loaded\": 3"));
        assert!(text.contains("\"shards_executed\": 7"));
        assert!(text.contains("\"tool\": \"unit-test\""));
        assert!(text.contains("\"fingerprint\""));
        assert!(text.contains("\"attribution\""));
        assert!(text.contains("\"grant_share\""));
        assert!(text.contains("\"step_mode\": \"cycle-by-cycle\""));
        assert!(text.contains("\"sim_cycles_per_sec\": 1500000.0"));
        assert!(text.contains("\"extra\": 7"));
    }

    #[test]
    fn fingerprint_ignores_step_mode() {
        let cycle = MachineConfig::disc1().with_step_mode(StepMode::CycleByCycle);
        let skip = MachineConfig::disc1().with_step_mode(StepMode::EventSkip);
        assert_eq!(config_fingerprint(&cycle), config_fingerprint(&skip));
    }

    #[test]
    fn fingerprint_ignores_dispatch_mode() {
        use disc_core::DispatchMode;
        let legacy = MachineConfig::disc1().with_dispatch_mode(DispatchMode::Legacy);
        let burst = MachineConfig::disc1().with_dispatch_mode(DispatchMode::Superblock);
        assert_eq!(config_fingerprint(&legacy), config_fingerprint(&burst));
    }

    #[test]
    fn timing_json_reports_skip_stats() {
        let skip = SkipStats {
            skips: 4,
            cycles_skipped: 100,
        };
        let text = timing_json(StepMode::EventSkip, None, &skip).render();
        assert!(text.contains("\"step_mode\":\"event-skip\""));
        assert!(text.contains("\"sim_cycles_per_sec\":null"));
        assert!(text.contains("\"skips\":4"));
        assert!(text.contains("\"cycles_skipped\":100"));
        assert!(text.contains("\"mean_skip\":25.0"));
    }

    #[test]
    fn attribution_json_lists_all_buckets_and_totals() {
        let mut attr = CycleAttribution::new(2);
        attr.issue[0] = 4;
        attr.idle[0] = 6;
        attr.not_scheduled[1] = 10;
        let rendered = attribution_json(&attr).render();
        for bucket in ATTRIBUTION_BUCKETS {
            assert!(rendered.contains(bucket), "missing {bucket}");
        }
        assert!(rendered.contains("\"totals\":[10,10]"));
    }
}
