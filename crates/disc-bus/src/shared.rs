//! Shared ownership of a peripheral between host code and the bus.

use std::cell::{Ref, RefCell, RefMut};
use std::rc::Rc;

use disc_core::IrqRequest;

use crate::bus::Peripheral;

/// `Rc<RefCell<T>>` wrapper implementing [`Peripheral`] by delegation.
///
/// The machine owns the bus (`Box<dyn DataBus>`), so a test or host program
/// that wants to inspect or stimulate a device after constructing the
/// machine maps a [`Shared::handle`] clone and keeps the original.
///
/// # Example
///
/// ```
/// use disc_bus::{Actuator, PeripheralBus, Shared};
///
/// let act = Shared::new(Actuator::new(1));
/// let mut bus = PeripheralBus::new();
/// bus.map(0xa000, 1, Box::new(act.handle()))?;
/// // … move `bus` into a Machine, run, then:
/// assert!(act.borrow().history().is_empty());
/// # Ok::<(), disc_bus::MapError>(())
/// ```
#[derive(Debug)]
pub struct Shared<T>(Rc<RefCell<T>>);

impl<T> Shared<T> {
    /// Wraps `value` for shared access.
    pub fn new(value: T) -> Self {
        Shared(Rc::new(RefCell::new(value)))
    }

    /// Another handle to the same device (map this one on the bus).
    pub fn handle(&self) -> Shared<T> {
        Shared(Rc::clone(&self.0))
    }

    /// Immutably borrows the device.
    ///
    /// # Panics
    ///
    /// Panics if the device is currently mutably borrowed.
    pub fn borrow(&self) -> Ref<'_, T> {
        self.0.borrow()
    }

    /// Mutably borrows the device.
    ///
    /// # Panics
    ///
    /// Panics if the device is currently borrowed.
    pub fn borrow_mut(&self) -> RefMut<'_, T> {
        self.0.borrow_mut()
    }
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        self.handle()
    }
}

impl<T: Peripheral> Peripheral for Shared<T> {
    fn latency(&self, offset: u16, write: bool) -> u32 {
        self.0.borrow().latency(offset, write)
    }

    fn read(&mut self, offset: u16) -> u16 {
        self.0.borrow_mut().read(offset)
    }

    fn write(&mut self, offset: u16, value: u16) {
        self.0.borrow_mut().write(offset, value)
    }

    fn tick(&mut self, irqs: &mut Vec<IrqRequest>) {
        self.0.borrow_mut().tick(irqs)
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        self.0.borrow().next_event(now)
    }

    fn advance(&mut self, cycles: u64) {
        self.0.borrow_mut().advance(cycles)
    }

    fn save_state(&self) -> Vec<u8> {
        self.0.borrow().save_state()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), disc_snap::SnapError> {
        self.0.borrow_mut().restore_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u16);

    impl Peripheral for Counter {
        fn latency(&self, _o: u16, _w: bool) -> u32 {
            0
        }
        fn read(&mut self, _o: u16) -> u16 {
            self.0
        }
        fn write(&mut self, _o: u16, v: u16) {
            self.0 = v;
        }
    }

    #[test]
    fn handle_sees_device_mutations() {
        let shared = Shared::new(Counter(0));
        let mut mapped: Box<dyn Peripheral> = Box::new(shared.handle());
        mapped.write(0, 7);
        assert_eq!(shared.borrow().0, 7);
        shared.borrow_mut().0 = 9;
        assert_eq!(mapped.read(0), 9);
    }
}
