//! Address-decoded peripheral composition.

use std::fmt;

use disc_core::{DataBus, IrqRequest};

/// A device attachable to the asynchronous data bus.
///
/// Addresses handed to a peripheral are *offsets* into its mapped window.
pub trait Peripheral {
    /// Access latency in cycles for `offset`; devices model their
    /// conversion/transfer times here (the whole point of the asynchronous
    /// bus). A latency of 0 completes synchronously.
    fn latency(&self, offset: u16, write: bool) -> u32;

    /// Reads the register/word at `offset` (called at transaction
    /// completion).
    fn read(&mut self, offset: u16) -> u16;

    /// Writes the register/word at `offset` (called at transaction
    /// completion).
    fn write(&mut self, offset: u16, value: u16);

    /// Advances one machine cycle; devices push interrupt requests.
    fn tick(&mut self, irqs: &mut Vec<IrqRequest>) {
        let _ = irqs;
    }

    /// Earliest absolute machine cycle `>= now` at which a [`tick`]
    /// (Peripheral::tick) may produce an observable effect, or `None`
    /// when no future tick can. Mirrors
    /// [`DataBus::next_event`](disc_core::DataBus::next_event): the tick
    /// during the machine step starting at cycle `now` counts as
    /// happening *at* `now`, and the caller never skips past the returned
    /// cycle.
    ///
    /// The default (`None`) is only sound for devices whose `tick` is a
    /// no-op; any device overriding `tick` must override `next_event` and
    /// [`advance`](Peripheral::advance) together.
    fn next_event(&self, now: u64) -> Option<u64> {
        let _ = now;
        None
    }

    /// Advances device-internal time by `cycles` machine cycles in one
    /// step, exactly equivalent to that many [`tick`](Peripheral::tick)
    /// calls *given* the caller's guarantee that the skipped stretch ends
    /// strictly before [`next_event`](Peripheral::next_event).
    fn advance(&mut self, cycles: u64) {
        let _ = cycles;
    }

    /// Serializes the device's mutable state as an opaque `disc-snap/v1`
    /// component blob, aggregated into machine snapshots by
    /// [`PeripheralBus::save_state`](disc_core::DataBus::save_state).
    /// Mirrors [`DataBus::save_state`]: the default (empty blob) is only
    /// sound for stateless devices, and a blob conventionally starts with
    /// a device name tag so state can never land on the wrong device
    /// kind.
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state written by [`save_state`](Peripheral::save_state)
    /// onto an identically-constructed device.
    ///
    /// # Errors
    ///
    /// Returns [`disc_snap::SnapError`] when the blob is malformed or
    /// belongs to a different device kind/construction. The default
    /// accepts only the default `save_state`'s empty blob.
    fn restore_state(&mut self, state: &[u8]) -> Result<(), disc_snap::SnapError> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(disc_snap::SnapError::Corrupt(
                "device state offered to a stateless peripheral".into(),
            ))
        }
    }
}

/// Error returned by [`PeripheralBus::map`] on overlapping or empty
/// windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapError {
    message: String,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for MapError {}

struct Mapping {
    base: u16,
    len: u16,
    device: Box<dyn Peripheral>,
}

/// An address-decoded bus of [`Peripheral`]s implementing
/// [`disc_core::DataBus`].
///
/// Reads of unmapped addresses return `0xffff` (open bus) with zero
/// latency; unmapped writes are dropped. Both are counted.
pub struct PeripheralBus {
    mappings: Vec<Mapping>,
    unmapped_accesses: u64,
}

impl fmt::Debug for PeripheralBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PeripheralBus")
            .field("mappings", &self.mappings.len())
            .field("unmapped_accesses", &self.unmapped_accesses)
            .finish()
    }
}

impl PeripheralBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        PeripheralBus {
            mappings: Vec::new(),
            unmapped_accesses: 0,
        }
    }

    /// Maps `device` at `[base, base + len)`.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] when `len` is zero, the window wraps the
    /// 16-bit address space, or it overlaps an existing mapping.
    pub fn map(
        &mut self,
        base: u16,
        len: u16,
        device: Box<dyn Peripheral>,
    ) -> Result<(), MapError> {
        if len == 0 {
            return Err(MapError {
                message: "mapping length must be nonzero".into(),
            });
        }
        let end = base as u32 + len as u32;
        if end > 0x1_0000 {
            return Err(MapError {
                message: format!("mapping {base:#06x}+{len:#x} exceeds the address space"),
            });
        }
        for m in &self.mappings {
            let m_end = m.base as u32 + m.len as u32;
            if (base as u32) < m_end && end > m.base as u32 {
                return Err(MapError {
                    message: format!(
                        "mapping {base:#06x}+{len:#x} overlaps {:#06x}+{:#x}",
                        m.base, m.len
                    ),
                });
            }
        }
        self.mappings.push(Mapping { base, len, device });
        Ok(())
    }

    /// Number of reads/writes that hit no mapping.
    pub fn unmapped_accesses(&self) -> u64 {
        self.unmapped_accesses
    }

    fn find(&self, addr: u16) -> Option<(usize, u16)> {
        self.mappings.iter().enumerate().find_map(|(i, m)| {
            if addr >= m.base && (addr as u32) < m.base as u32 + m.len as u32 {
                Some((i, addr - m.base))
            } else {
                None
            }
        })
    }
}

impl Default for PeripheralBus {
    fn default() -> Self {
        Self::new()
    }
}

impl DataBus for PeripheralBus {
    fn latency(&self, addr: u16, write: bool) -> Option<u32> {
        self.find(addr)
            .map(|(i, off)| self.mappings[i].device.latency(off, write))
    }

    fn read(&mut self, addr: u16) -> u16 {
        match self.find(addr) {
            Some((i, off)) => self.mappings[i].device.read(off),
            None => {
                self.unmapped_accesses += 1;
                0xffff
            }
        }
    }

    fn write(&mut self, addr: u16, value: u16) {
        match self.find(addr) {
            Some((i, off)) => self.mappings[i].device.write(off, value),
            None => self.unmapped_accesses += 1,
        }
    }

    fn tick(&mut self, irqs: &mut Vec<IrqRequest>) {
        for m in &mut self.mappings {
            m.device.tick(irqs);
        }
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        self.mappings
            .iter()
            .filter_map(|m| m.device.next_event(now))
            .min()
    }

    fn advance(&mut self, cycles: u64) {
        for m in &mut self.mappings {
            m.device.advance(cycles);
        }
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = disc_snap::SnapWriter::new();
        w.put_str("peripheral-bus");
        w.put_u64(self.unmapped_accesses);
        w.put_usize(self.mappings.len());
        for m in &self.mappings {
            w.put_u16(m.base);
            w.put_u16(m.len);
            w.put_bytes(&m.device.save_state());
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), disc_snap::SnapError> {
        let mut r = disc_snap::SnapReader::new(state);
        r.expect_str("peripheral-bus")?;
        let unmapped = r.get_u64()?;
        let n = r.get_usize()?;
        if n != self.mappings.len() {
            return Err(disc_snap::SnapError::Corrupt(format!(
                "peripheral count mismatch: bus has {}, snapshot has {n}",
                self.mappings.len()
            )));
        }
        for m in &mut self.mappings {
            let base = r.get_u16()?;
            let len = r.get_u16()?;
            if base != m.base || len != m.len {
                return Err(disc_snap::SnapError::Corrupt(format!(
                    "mapping mismatch at {:#06x}+{:#x}: snapshot has {base:#06x}+{len:#x}",
                    m.base, m.len
                )));
            }
            m.device.restore_state(r.get_bytes()?)?;
        }
        r.finish()?;
        self.unmapped_accesses = unmapped;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo(u16);

    impl Peripheral for Echo {
        fn latency(&self, _offset: u16, _write: bool) -> u32 {
            3
        }
        fn read(&mut self, offset: u16) -> u16 {
            self.0 + offset
        }
        fn write(&mut self, _offset: u16, value: u16) {
            self.0 = value;
        }
    }

    #[test]
    fn decode_routes_by_window() {
        let mut bus = PeripheralBus::new();
        bus.map(0x1000, 0x10, Box::new(Echo(100))).unwrap();
        bus.map(0x2000, 0x10, Box::new(Echo(200))).unwrap();
        assert_eq!(bus.read(0x1005), 105);
        assert_eq!(bus.read(0x2001), 201);
        assert_eq!(bus.latency(0x1000, false), Some(3));
        assert_eq!(bus.latency(0x3000, false), None);
    }

    #[test]
    fn unmapped_reads_open_bus() {
        let mut bus = PeripheralBus::new();
        assert_eq!(bus.read(0x4242), 0xffff);
        bus.write(0x4242, 1);
        assert_eq!(bus.unmapped_accesses(), 2);
    }

    #[test]
    fn overlap_rejected() {
        let mut bus = PeripheralBus::new();
        bus.map(0x1000, 0x100, Box::new(Echo(0))).unwrap();
        assert!(bus.map(0x10ff, 2, Box::new(Echo(0))).is_err());
        assert!(bus.map(0x0fff, 2, Box::new(Echo(0))).is_err());
        assert!(bus.map(0x1100, 2, Box::new(Echo(0))).is_ok());
    }

    #[test]
    fn zero_length_and_wrapping_rejected() {
        let mut bus = PeripheralBus::new();
        assert!(bus.map(0x1000, 0, Box::new(Echo(0))).is_err());
        assert!(bus.map(0xffff, 2, Box::new(Echo(0))).is_err());
    }

    #[test]
    fn containing_and_identical_overlaps_rejected() {
        let mut bus = PeripheralBus::new();
        bus.map(0x1000, 0x100, Box::new(Echo(0))).unwrap();
        // A window swallowing the existing one whole.
        assert!(bus.map(0x0800, 0x1000, Box::new(Echo(0))).is_err());
        // A window strictly inside the existing one.
        assert!(bus.map(0x1040, 0x10, Box::new(Echo(0))).is_err());
        // The exact same window again.
        assert!(bus.map(0x1000, 0x100, Box::new(Echo(0))).is_err());
        // Rejection leaves the original mapping intact.
        assert_eq!(bus.read(0x1005), 5);
    }

    #[test]
    fn adjacent_windows_and_address_space_edges_are_fine() {
        let mut bus = PeripheralBus::new();
        // Flush against both ends of the 16-bit space and each other.
        bus.map(0x0000, 0x10, Box::new(Echo(0))).unwrap();
        bus.map(0x0010, 0x10, Box::new(Echo(100))).unwrap();
        bus.map(0xfff0, 0x10, Box::new(Echo(200))).unwrap();
        assert_eq!(bus.read(0x000f), 15);
        assert_eq!(bus.read(0x0010), 100);
        assert_eq!(bus.read(0xffff), 215);
        assert_eq!(bus.latency(0x0020, false), None, "gap stays unmapped");
    }

    #[test]
    fn map_error_names_the_colliding_windows() {
        let mut bus = PeripheralBus::new();
        bus.map(0x1000, 0x100, Box::new(Echo(0))).unwrap();
        let err = bus.map(0x10ff, 2, Box::new(Echo(0))).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("0x10ff"), "mentions the new window: {text}");
        assert!(text.contains("0x1000"), "mentions the old window: {text}");
        let err = bus.map(0xfff0, 0x20, Box::new(Echo(0))).unwrap_err();
        assert!(err.to_string().contains("exceeds the address space"));
    }

    #[test]
    fn writes_reach_device() {
        let mut bus = PeripheralBus::new();
        bus.map(0, 4, Box::new(Echo(0))).unwrap();
        bus.write(2, 42);
        assert_eq!(bus.read(0), 42);
    }

    fn loaded_bus() -> PeripheralBus {
        let mut bus = PeripheralBus::new();
        bus.map(0x8000, 0x100, Box::new(crate::ExtRam::new(0x100, 2)))
            .unwrap();
        bus.map(
            0x9000,
            crate::Timer::REGS,
            Box::new(crate::Timer::periodic(50, 1, 5)),
        )
        .unwrap();
        bus.map(
            0x9100,
            crate::Watchdog::REGS,
            Box::new(crate::Watchdog::new(200, 0, 7)),
        )
        .unwrap();
        bus.map(
            0x9200,
            crate::SensorPort::REGS,
            Box::new(crate::SensorPort::triangle(30, 10, 8).with_irq(2, 4)),
        )
        .unwrap();
        let mut uart = crate::Uart::new(4).with_irq(3, 3);
        uart.feed(17, vec![7, 8, 9]);
        bus.map(0x9300, crate::Uart::REGS, Box::new(uart)).unwrap();
        bus.map(0x9400, 2, Box::new(crate::Actuator::new(3)))
            .unwrap();
        bus
    }

    #[test]
    fn full_bus_state_roundtrips() {
        use disc_core::DataBus;
        let mut bus = loaded_bus();
        let mut irqs = Vec::new();
        for i in 0..137u16 {
            DataBus::tick(&mut bus, &mut irqs);
            if i % 10 == 0 {
                DataBus::write(&mut bus, 0x8000 + i, i);
                DataBus::write(&mut bus, 0x9400, i);
            }
        }
        let _ = DataBus::read(&mut bus, 0x9300); // pop one RX word
        let _ = DataBus::read(&mut bus, 0x4242); // count an unmapped access
        let state = bus.save_state();

        let mut fresh = loaded_bus();
        fresh.restore_state(&state).expect("restore");
        // Both copies must serialize identically and behave identically
        // from here on.
        assert_eq!(fresh.save_state(), state);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for _ in 0..300 {
            DataBus::tick(&mut bus, &mut a);
            DataBus::tick(&mut fresh, &mut b);
        }
        assert_eq!(a, b, "post-restore interrupt timelines diverge");
        for addr in [
            0x8000, 0x8010, 0x9002, 0x9101, 0x9200, 0x9201, 0x9301, 0x9400,
        ] {
            assert_eq!(
                DataBus::read(&mut bus, addr),
                DataBus::read(&mut fresh, addr),
                "register {addr:#06x} diverges"
            );
        }
    }

    #[test]
    fn restore_rejects_reshaped_bus() {
        let bus = loaded_bus();
        let state = bus.save_state();
        let mut other = PeripheralBus::new();
        other
            .map(0x8000, 0x100, Box::new(crate::ExtRam::new(0x100, 2)))
            .unwrap();
        assert!(other.restore_state(&state).is_err(), "missing devices");
        let mut swapped = PeripheralBus::new();
        swapped
            .map(0x8000, 0x100, Box::new(crate::ExtRam::new(0x100, 3)))
            .unwrap();
        let sub = bus.mappings[0].device.save_state();
        assert!(
            swapped.mappings[0].device.restore_state(&sub).is_err(),
            "construction params differ"
        );
    }
}
