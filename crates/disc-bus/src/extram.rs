//! External RAM with configurable wait states (the paper's `tmem`).

use crate::bus::Peripheral;

/// Word-addressed external memory.
///
/// The access latency models the *"number of wait cycles for an external
/// memory access"* the paper sweeps in its evaluation.
#[derive(Debug, Clone)]
pub struct ExtRam {
    words: Vec<u16>,
    latency: u32,
    reads: u64,
    writes: u64,
}

impl ExtRam {
    /// Creates `words` zeroed words with the given access latency.
    pub fn new(words: usize, latency: u32) -> Self {
        ExtRam {
            words: vec![0; words],
            latency,
            reads: 0,
            writes: 0,
        }
    }

    /// Direct inspection (no latency, no counters).
    pub fn peek(&self, offset: u16) -> u16 {
        self.words.get(offset as usize).copied().unwrap_or(0xffff)
    }

    /// Direct initialization (no latency, no counters).
    pub fn poke(&mut self, offset: u16, value: u16) {
        if let Some(w) = self.words.get_mut(offset as usize) {
            *w = value;
        }
    }

    /// Bus reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Bus writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

impl Peripheral for ExtRam {
    fn latency(&self, _offset: u16, _write: bool) -> u32 {
        self.latency
    }

    fn read(&mut self, offset: u16) -> u16 {
        self.reads += 1;
        self.peek(offset)
    }

    fn write(&mut self, offset: u16, value: u16) {
        self.writes += 1;
        self.poke(offset, value);
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = disc_snap::SnapWriter::new();
        w.put_str("ext-ram");
        w.put_u32(self.latency);
        w.put_usize(self.words.len());
        for &word in &self.words {
            w.put_u16(word);
        }
        w.put_u64(self.reads);
        w.put_u64(self.writes);
        w.into_bytes()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), disc_snap::SnapError> {
        let mut r = disc_snap::SnapReader::new(state);
        r.expect_str("ext-ram")?;
        let latency = r.get_u32()?;
        let len = r.get_usize()?;
        if latency != self.latency || len != self.words.len() {
            return Err(disc_snap::SnapError::Corrupt(format!(
                "ext-ram construction mismatch: device ({} words, latency {}), \
                 snapshot ({len} words, latency {latency})",
                self.words.len(),
                self.latency
            )));
        }
        for word in self.words.iter_mut() {
            *word = r.get_u16()?;
        }
        self.reads = r.get_u64()?;
        self.writes = r.get_u64()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_counters() {
        let mut r = ExtRam::new(16, 4);
        r.write(3, 77);
        assert_eq!(r.read(3), 77);
        assert_eq!(r.reads(), 1);
        assert_eq!(r.writes(), 1);
        assert_eq!(r.latency(0, false), 4);
    }

    #[test]
    fn out_of_range_reads_open_bus() {
        let mut r = ExtRam::new(4, 0);
        assert_eq!(r.read(100), 0xffff);
        r.write(100, 1); // dropped
        assert_eq!(r.peek(100), 0xffff);
    }
}
