//! External RAM with configurable wait states (the paper's `tmem`).

use crate::bus::Peripheral;

/// Word-addressed external memory.
///
/// The access latency models the *"number of wait cycles for an external
/// memory access"* the paper sweeps in its evaluation.
#[derive(Debug, Clone)]
pub struct ExtRam {
    words: Vec<u16>,
    latency: u32,
    reads: u64,
    writes: u64,
}

impl ExtRam {
    /// Creates `words` zeroed words with the given access latency.
    pub fn new(words: usize, latency: u32) -> Self {
        ExtRam {
            words: vec![0; words],
            latency,
            reads: 0,
            writes: 0,
        }
    }

    /// Direct inspection (no latency, no counters).
    pub fn peek(&self, offset: u16) -> u16 {
        self.words.get(offset as usize).copied().unwrap_or(0xffff)
    }

    /// Direct initialization (no latency, no counters).
    pub fn poke(&mut self, offset: u16, value: u16) {
        if let Some(w) = self.words.get_mut(offset as usize) {
            *w = value;
        }
    }

    /// Bus reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Bus writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

impl Peripheral for ExtRam {
    fn latency(&self, _offset: u16, _write: bool) -> u32 {
        self.latency
    }

    fn read(&mut self, offset: u16) -> u16 {
        self.reads += 1;
        self.peek(offset)
    }

    fn write(&mut self, offset: u16, value: u16) {
        self.writes += 1;
        self.poke(offset, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_counters() {
        let mut r = ExtRam::new(16, 4);
        r.write(3, 77);
        assert_eq!(r.read(3), 77);
        assert_eq!(r.reads(), 1);
        assert_eq!(r.writes(), 1);
        assert_eq!(r.latency(0, false), 4);
    }

    #[test]
    fn out_of_range_reads_open_bus() {
        let mut r = ExtRam::new(4, 0);
        assert_eq!(r.read(100), 0xffff);
        r.write(100, 1); // dropped
        assert_eq!(r.peek(100), 0xffff);
    }
}
