//! Byte-stream serial port with RX interrupts.

use std::collections::VecDeque;

use disc_core::IrqRequest;

use crate::bus::Peripheral;

/// Register map of the [`Uart`].
///
/// | offset | register | access |
/// |--------|----------|--------|
/// | 0 | `DATA` — read pops RX, write pushes TX | r/w |
/// | 1 | `STATUS` — bit0 rx-ready, bit1 tx-idle | r |
#[derive(Debug, Clone)]
pub struct Uart {
    rx: VecDeque<u16>,
    rx_capacity: usize,
    rx_overflows: u64,
    tx: Vec<u16>,
    /// Cycles per word on the wire (models baud rate as access latency).
    word_cycles: u32,
    irq: Option<(usize, u8)>,
    /// Cycles between host-injected RX words, if streaming.
    rx_feed: Option<(u32, u32, Box<[u16]>, usize)>,
}

impl Uart {
    /// Number of mapped registers.
    pub const REGS: u16 = 2;

    /// Default RX FIFO depth, like a generously buffered 16550.
    pub const DEFAULT_RX_CAPACITY: usize = 64;

    /// Creates a UART whose word transfer takes `word_cycles` cycles.
    pub fn new(word_cycles: u32) -> Self {
        Uart {
            rx: VecDeque::new(),
            rx_capacity: Self::DEFAULT_RX_CAPACITY,
            rx_overflows: 0,
            tx: Vec::new(),
            word_cycles,
            irq: None,
            rx_feed: None,
        }
    }

    /// Bounds the RX FIFO at `capacity` words. A real UART has finite
    /// buffering: words arriving while the FIFO is full are *lost* (and
    /// counted in [`rx_overflows`](Self::rx_overflows)), which is exactly
    /// what happens to firmware that services RX interrupts too slowly.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_rx_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "rx capacity must be nonzero");
        self.rx_capacity = capacity;
        self
    }

    /// Routes an RX-ready interrupt to (`stream`, `bit`).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 8`.
    pub fn with_irq(mut self, stream: usize, bit: u8) -> Self {
        assert!(bit < 8);
        self.irq = Some((stream, bit));
        self
    }

    /// Streams `words` into RX, one every `interval` cycles, starting
    /// `interval` cycles from now.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn feed(&mut self, interval: u32, words: impl Into<Box<[u16]>>) {
        assert!(interval > 0, "feed interval must be nonzero");
        self.rx_feed = Some((interval, interval, words.into(), 0));
    }

    /// Pushes one word into RX immediately (raises the RX interrupt on
    /// the next tick). Returns `false` — dropping the word and counting
    /// an overflow — when the FIFO is full.
    pub fn push_rx(&mut self, word: u16) -> bool {
        if self.rx.len() >= self.rx_capacity {
            self.rx_overflows += 1;
            return false;
        }
        self.rx.push_back(word);
        true
    }

    /// Words the program has transmitted.
    pub fn transmitted(&self) -> &[u16] {
        &self.tx
    }

    /// Words waiting in RX.
    pub fn rx_pending(&self) -> usize {
        self.rx.len()
    }

    /// RX words lost to a full FIFO.
    pub fn rx_overflows(&self) -> u64 {
        self.rx_overflows
    }
}

impl Peripheral for Uart {
    fn latency(&self, offset: u16, write: bool) -> u32 {
        match (offset, write) {
            (0, _) => self.word_cycles,
            _ => 1,
        }
    }

    fn read(&mut self, offset: u16) -> u16 {
        match offset {
            0 => self.rx.pop_front().unwrap_or(0),
            1 => {
                let rx_ready = !self.rx.is_empty() as u16;
                rx_ready | 0b10 // tx modeled always idle after latency
            }
            _ => 0xffff,
        }
    }

    fn write(&mut self, offset: u16, value: u16) {
        if offset == 0 {
            self.tx.push(value);
        }
    }

    fn tick(&mut self, irqs: &mut Vec<IrqRequest>) {
        let mut arrived = None;
        if let Some((interval, countdown, words, idx)) = &mut self.rx_feed {
            if *idx < words.len() {
                *countdown -= 1;
                if *countdown == 0 {
                    arrived = Some(words[*idx]);
                    *idx += 1;
                    *countdown = *interval;
                }
            }
        }
        // A word lost to a full FIFO never becomes rx-ready, so it raises
        // no interrupt either — the overflow counter is the only evidence.
        if let Some(word) = arrived {
            if self.push_rx(word) {
                if let Some((stream, bit)) = self.irq {
                    irqs.push(IrqRequest { stream, bit });
                }
            }
        }
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        // Only an active RX feed makes future ticks observable; the word
        // arrives during the tick that drains the countdown.
        if let Some((_, countdown, words, idx)) = &self.rx_feed {
            if *idx < words.len() {
                return Some(now + u64::from((*countdown).max(1)) - 1);
            }
        }
        None
    }

    fn advance(&mut self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        if let Some((_, countdown, words, idx)) = &mut self.rx_feed {
            if *idx < words.len() {
                debug_assert!(
                    cycles < u64::from(*countdown),
                    "advance({cycles}) would deliver an RX word with countdown {countdown}"
                );
                *countdown -= cycles as u32;
            }
        }
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = disc_snap::SnapWriter::new();
        w.put_str("uart");
        w.put_u32(self.word_cycles);
        w.put_usize(self.rx_capacity);
        w.put_usize(self.rx.len());
        for &word in &self.rx {
            w.put_u16(word);
        }
        w.put_u64(self.rx_overflows);
        w.put_usize(self.tx.len());
        for &word in &self.tx {
            w.put_u16(word);
        }
        match &self.rx_feed {
            None => w.put_u8(0),
            Some((interval, countdown, words, idx)) => {
                w.put_u8(1);
                w.put_u32(*interval);
                w.put_u32(*countdown);
                w.put_usize(words.len());
                for &word in words.iter() {
                    w.put_u16(word);
                }
                w.put_usize(*idx);
            }
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), disc_snap::SnapError> {
        let mut r = disc_snap::SnapReader::new(state);
        r.expect_str("uart")?;
        let word_cycles = r.get_u32()?;
        let rx_capacity = r.get_usize()?;
        if word_cycles != self.word_cycles || rx_capacity != self.rx_capacity {
            return Err(disc_snap::SnapError::Corrupt(format!(
                "uart construction mismatch: device ({}, {}), \
                 snapshot ({word_cycles}, {rx_capacity})",
                self.word_cycles, self.rx_capacity
            )));
        }
        let n = r.get_usize()?;
        if n > rx_capacity {
            return Err(disc_snap::SnapError::Corrupt(format!(
                "uart RX occupancy {n} exceeds capacity {rx_capacity}"
            )));
        }
        self.rx.clear();
        for _ in 0..n {
            self.rx.push_back(r.get_u16()?);
        }
        self.rx_overflows = r.get_u64()?;
        let n = r.get_usize()?;
        self.tx.clear();
        for _ in 0..n {
            self.tx.push(r.get_u16()?);
        }
        self.rx_feed = match r.get_u8()? {
            0 => None,
            1 => {
                let interval = r.get_u32()?;
                let countdown = r.get_u32()?;
                let n = r.get_usize()?;
                let mut words = Vec::with_capacity(n);
                for _ in 0..n {
                    words.push(r.get_u16()?);
                }
                let idx = r.get_usize()?;
                if idx > words.len() {
                    return Err(disc_snap::SnapError::Corrupt(format!(
                        "uart feed index {idx} past {} words",
                        words.len()
                    )));
                }
                Some((interval, countdown, words.into_boxed_slice(), idx))
            }
            t => {
                return Err(disc_snap::SnapError::Corrupt(format!(
                    "bad uart feed tag {t}"
                )))
            }
        };
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_records_words() {
        let mut u = Uart::new(8);
        u.write(0, 0x41);
        u.write(0, 0x42);
        assert_eq!(u.transmitted(), &[0x41, 0x42]);
        assert_eq!(u.latency(0, true), 8);
    }

    #[test]
    fn rx_pops_in_order() {
        let mut u = Uart::new(1);
        u.push_rx(1);
        u.push_rx(2);
        assert_eq!(u.read(1) & 1, 1, "rx-ready");
        assert_eq!(u.read(0), 1);
        assert_eq!(u.read(0), 2);
        assert_eq!(u.read(0), 0, "empty RX reads 0");
        assert_eq!(u.read(1) & 1, 0);
    }

    #[test]
    fn feed_streams_words_with_interrupts() {
        let mut u = Uart::new(1).with_irq(1, 3);
        u.feed(4, vec![10, 20]);
        let mut irqs = Vec::new();
        for _ in 0..20 {
            u.tick(&mut irqs);
        }
        assert_eq!(irqs.len(), 2);
        assert_eq!(u.rx_pending(), 2);
        assert_eq!(u.read(0), 10);
    }

    #[test]
    fn full_fifo_drops_and_counts() {
        let mut u = Uart::new(1).with_rx_capacity(2);
        assert!(u.push_rx(1));
        assert!(u.push_rx(2));
        assert!(!u.push_rx(3), "third word bounces");
        assert_eq!(u.rx_overflows(), 1);
        assert_eq!(u.rx_pending(), 2);
        assert_eq!(u.read(0), 1);
        assert!(u.push_rx(4), "draining one makes room again");
        assert_eq!(u.read(0), 2);
        assert_eq!(u.read(0), 4, "dropped word 3 is gone for good");
    }

    #[test]
    fn overflowing_feed_raises_no_interrupts_for_lost_words() {
        let mut u = Uart::new(1).with_irq(0, 3).with_rx_capacity(3);
        u.feed(2, (0..8).collect::<Vec<u16>>());
        let mut irqs = Vec::new();
        for _ in 0..20 {
            u.tick(&mut irqs);
        }
        assert_eq!(u.rx_pending(), 3, "FIFO capped at capacity");
        assert_eq!(u.rx_overflows(), 5);
        assert_eq!(irqs.len(), 3, "only accepted words interrupt");
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _ = Uart::new(1).with_rx_capacity(0);
    }
}
