//! Programmable interval timer raising per-stream interrupts.
//!
//! Timers are the substrate of hard-deadline management: *"Real Time
//! Systems also require hard deadline management which is often implemented
//! via timer based interrupts. … In DISC, an interrupt, instead of
//! suspending a running process, can create its own instruction stream."*

use disc_core::IrqRequest;

use crate::bus::Peripheral;

/// Register map of the [`Timer`].
///
/// | offset | register | access |
/// |--------|----------|--------|
/// | 0 | `PERIOD` — reload value in cycles | r/w |
/// | 1 | `CONTROL` — bit0 enable, bit1 periodic | r/w |
/// | 2 | `COUNT` — cycles until next fire | r |
/// | 3 | `FIRES` — number of expirations | r |
#[derive(Debug, Clone)]
pub struct Timer {
    period: u32,
    control: u16,
    count: u32,
    fires: u64,
    stream: usize,
    bit: u8,
}

impl Timer {
    /// Number of mapped registers.
    pub const REGS: u16 = 4;

    const CTRL_ENABLE: u16 = 1;
    const CTRL_PERIODIC: u16 = 2;

    /// A periodic timer raising (`stream`, `bit`) every `period` cycles,
    /// already enabled.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `bit >= 8`.
    pub fn periodic(period: u32, stream: usize, bit: u8) -> Self {
        assert!(period > 0, "timer period must be nonzero");
        assert!(bit < 8, "interrupt bit out of range");
        Timer {
            period,
            control: Self::CTRL_ENABLE | Self::CTRL_PERIODIC,
            count: period,
            fires: 0,
            stream,
            bit,
        }
    }

    /// A one-shot timer firing once after `period` cycles, already enabled.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `bit >= 8`.
    pub fn one_shot(period: u32, stream: usize, bit: u8) -> Self {
        let mut t = Self::periodic(period, stream, bit);
        t.control = Self::CTRL_ENABLE;
        t
    }

    /// Number of expirations so far.
    pub fn fires(&self) -> u64 {
        self.fires
    }

    /// `true` while the timer is counting.
    pub fn enabled(&self) -> bool {
        self.control & Self::CTRL_ENABLE != 0
    }
}

impl Peripheral for Timer {
    fn latency(&self, _offset: u16, _write: bool) -> u32 {
        // Timer registers are fast on-board I/O.
        1
    }

    fn read(&mut self, offset: u16) -> u16 {
        match offset {
            0 => self.period as u16,
            1 => self.control,
            2 => self.count as u16,
            3 => self.fires as u16,
            _ => 0xffff,
        }
    }

    fn write(&mut self, offset: u16, value: u16) {
        match offset {
            0 => {
                self.period = value.max(1) as u32;
                self.count = self.period;
            }
            1 => self.control = value,
            _ => {}
        }
    }

    fn tick(&mut self, irqs: &mut Vec<IrqRequest>) {
        if !self.enabled() {
            return;
        }
        self.count -= 1;
        if self.count == 0 {
            self.fires += 1;
            irqs.push(IrqRequest {
                stream: self.stream,
                bit: self.bit,
            });
            if self.control & Self::CTRL_PERIODIC != 0 {
                self.count = self.period;
            } else {
                self.control &= !Self::CTRL_ENABLE;
                self.count = self.period;
            }
        }
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        if !self.enabled() {
            return None;
        }
        // `count` cycles of countdown remain; the fire happens during the
        // tick that decrements it to zero.
        Some(now + u64::from(self.count.max(1)) - 1)
    }

    fn advance(&mut self, cycles: u64) {
        if !self.enabled() || cycles == 0 {
            return;
        }
        debug_assert!(
            cycles < u64::from(self.count),
            "advance({cycles}) would fire a timer with count {}",
            self.count
        );
        self.count -= cycles as u32;
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = disc_snap::SnapWriter::new();
        w.put_str("timer");
        w.put_usize(self.stream);
        w.put_u8(self.bit);
        w.put_u32(self.period);
        w.put_u16(self.control);
        w.put_u32(self.count);
        w.put_u64(self.fires);
        w.into_bytes()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), disc_snap::SnapError> {
        let mut r = disc_snap::SnapReader::new(state);
        r.expect_str("timer")?;
        let stream = r.get_usize()?;
        let bit = r.get_u8()?;
        if stream != self.stream || bit != self.bit {
            return Err(disc_snap::SnapError::Corrupt(format!(
                "timer irq routing mismatch: device ({}, {}), snapshot ({stream}, {bit})",
                self.stream, self.bit
            )));
        }
        self.period = r.get_u32()?;
        self.control = r.get_u16()?;
        self.count = r.get_u32()?;
        self.fires = r.get_u64()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(t: &mut Timer, cycles: u32) -> Vec<IrqRequest> {
        let mut irqs = Vec::new();
        for _ in 0..cycles {
            t.tick(&mut irqs);
        }
        irqs
    }

    #[test]
    fn periodic_fires_every_period() {
        let mut t = Timer::periodic(10, 2, 5);
        let irqs = drain(&mut t, 35);
        assert_eq!(irqs.len(), 3);
        assert!(irqs.iter().all(|i| i.stream == 2 && i.bit == 5));
        assert_eq!(t.fires(), 3);
    }

    #[test]
    fn one_shot_fires_once() {
        let mut t = Timer::one_shot(5, 0, 7);
        let irqs = drain(&mut t, 50);
        assert_eq!(irqs.len(), 1);
        assert!(!t.enabled());
    }

    #[test]
    fn register_interface() {
        let mut t = Timer::periodic(100, 0, 1);
        assert_eq!(t.read(0), 100);
        t.write(0, 7);
        assert_eq!(t.read(2), 7);
        t.write(1, 0); // disable
        assert!(drain(&mut t, 100).is_empty());
        t.write(1, 3); // enable periodic
        assert_eq!(drain(&mut t, 7).len(), 1);
    }

    #[test]
    #[should_panic(expected = "period must be nonzero")]
    fn zero_period_rejected() {
        let _ = Timer::periodic(0, 0, 0);
    }
}
