//! Asynchronous data-bus peripherals for the DISC1 simulator.
//!
//! Real-time controllers *"require multiple I/O peripherals with different
//! access times"* (§3.6.1 of the paper), which is why DISC1's data bus is
//! asynchronous and why its architecture pays off: a stream blocked on a
//! 50-cycle sensor read donates its pipeline slots to the other streams.
//!
//! This crate provides:
//!
//! * [`PeripheralBus`] — an address-decoded composition of peripherals that
//!   plugs into [`disc_core::Machine::with_bus`];
//! * [`Peripheral`] — the device trait (per-address latency, read/write,
//!   per-cycle tick with interrupt lines);
//! * device models with realistically divergent access times:
//!   [`ExtRam`] (external memory, the paper's `tmem`), [`Timer`]
//!   (programmable periodic/one-shot interrupt source — the substrate for
//!   hard deadlines), [`SensorPort`] (slow analog-ish input with a
//!   data-ready interrupt), [`Uart`] (byte stream with RX interrupts) and
//!   [`Actuator`] (write-only output recording a timestamped history);
//! * [`Shared`] — an `Rc<RefCell<…>>` wrapper so test/host code keeps a
//!   handle on a device after moving the bus into the machine.
//!
//! # Example
//!
//! ```
//! use disc_bus::{ExtRam, PeripheralBus, Shared, Timer};
//!
//! let timer = Shared::new(Timer::periodic(100, 1, 5));
//! let mut bus = PeripheralBus::new();
//! bus.map(0x8000, 0x1000, Box::new(ExtRam::new(0x1000, 2)))?;
//! bus.map(0x9000, Timer::REGS, Box::new(timer.handle()))?;
//! # Ok::<(), disc_bus::MapError>(())
//! ```

mod actuator;
mod bus;
mod extram;
mod sensor;
mod shared;
mod timer;
mod uart;
mod watchdog;

pub use actuator::Actuator;
pub use bus::{MapError, Peripheral, PeripheralBus};
pub use extram::ExtRam;
pub use sensor::SensorPort;
pub use shared::Shared;
pub use timer::Timer;
pub use uart::Uart;
pub use watchdog::Watchdog;
