//! Write-only actuator output recording a timestamped command history.
//!
//! Control loops close through actuators (throttle, stepper coils, PWM
//! duty). The model records every command together with the bus-relative
//! cycle at which it landed, so tests and the RTS layer can check output
//! timing (e.g. deadline-bounded response to a sensor event).

use disc_core::IrqRequest;

use crate::bus::Peripheral;

/// A command delivered to the actuator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Command {
    /// Bus cycle (counted from machine start) at which the write
    /// completed.
    pub cycle: u64,
    /// Register offset written.
    pub offset: u16,
    /// Value written.
    pub value: u16,
}

/// Write-only output port with configurable settle latency.
#[derive(Debug, Clone, Default)]
pub struct Actuator {
    latency: u32,
    cycle: u64,
    history: Vec<Command>,
}

impl Actuator {
    /// Creates an actuator whose writes take `latency` cycles to settle.
    pub fn new(latency: u32) -> Self {
        Actuator {
            latency,
            cycle: 0,
            history: Vec::new(),
        }
    }

    /// Every command received, in arrival order.
    pub fn history(&self) -> &[Command] {
        &self.history
    }

    /// The most recent command, if any.
    pub fn last(&self) -> Option<Command> {
        self.history.last().copied()
    }
}

impl Peripheral for Actuator {
    fn latency(&self, _offset: u16, write: bool) -> u32 {
        if write {
            self.latency
        } else {
            1
        }
    }

    fn read(&mut self, _offset: u16) -> u16 {
        self.last().map(|c| c.value).unwrap_or(0)
    }

    fn write(&mut self, offset: u16, value: u16) {
        self.history.push(Command {
            cycle: self.cycle,
            offset,
            value,
        });
    }

    fn tick(&mut self, _irqs: &mut Vec<IrqRequest>) {
        self.cycle += 1;
    }

    // Ticks only advance the timestamp clock; that alone never needs to
    // bound a skip, but the clock must still move so command timestamps
    // stay identical across step modes.
    fn advance(&mut self, cycles: u64) {
        self.cycle += cycles;
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = disc_snap::SnapWriter::new();
        w.put_str("actuator");
        w.put_u32(self.latency);
        w.put_u64(self.cycle);
        w.put_usize(self.history.len());
        for c in &self.history {
            w.put_u64(c.cycle);
            w.put_u16(c.offset);
            w.put_u16(c.value);
        }
        w.into_bytes()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), disc_snap::SnapError> {
        let mut r = disc_snap::SnapReader::new(state);
        r.expect_str("actuator")?;
        let latency = r.get_u32()?;
        if latency != self.latency {
            return Err(disc_snap::SnapError::Corrupt(format!(
                "actuator latency mismatch: device {}, snapshot {latency}",
                self.latency
            )));
        }
        self.cycle = r.get_u64()?;
        let n = r.get_usize()?;
        self.history.clear();
        for _ in 0..n {
            self.history.push(Command {
                cycle: r.get_u64()?,
                offset: r.get_u16()?,
                value: r.get_u16()?,
            });
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_commands_with_cycles() {
        let mut a = Actuator::new(3);
        let mut irqs = Vec::new();
        for _ in 0..10 {
            a.tick(&mut irqs);
        }
        a.write(0, 42);
        for _ in 0..5 {
            a.tick(&mut irqs);
        }
        a.write(1, 43);
        assert_eq!(a.history().len(), 2);
        assert_eq!(a.history()[0].cycle, 10);
        assert_eq!(a.history()[1].cycle, 15);
        assert_eq!(a.last().unwrap().value, 43);
        assert_eq!(a.read(0), 43);
    }

    #[test]
    fn write_latency_differs_from_read() {
        let a = Actuator::new(7);
        assert_eq!(a.latency(0, true), 7);
        assert_eq!(a.latency(0, false), 1);
    }
}
