//! Watchdog timer — the classic hard-real-time safety peripheral.
//!
//! Control firmware must prove liveness by *kicking* the watchdog before
//! its timeout expires; a missed kick raises a (typically highest
//! priority) interrupt so the system can enter a safe state. On DISC the
//! recovery handler can run on a dedicated stream that is guaranteed
//! pipeline slots by the scheduler partition, no matter how wedged the
//! other streams are.

use disc_core::IrqRequest;

use crate::bus::Peripheral;

/// Register map: offset 0 = `KICK` (write any value to reset the
/// countdown), offset 1 = `COUNT` (cycles until bite, read-only),
/// offset 2 = `BITES` (times the watchdog fired, read-only).
#[derive(Debug, Clone)]
pub struct Watchdog {
    timeout: u32,
    count: u32,
    bites: u64,
    kicks: u64,
    stream: usize,
    bit: u8,
}

impl Watchdog {
    /// Number of mapped registers.
    pub const REGS: u16 = 3;

    /// Creates a watchdog biting (`stream`, `bit`) after `timeout` cycles
    /// without a kick.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero or `bit >= 8`.
    pub fn new(timeout: u32, stream: usize, bit: u8) -> Self {
        assert!(timeout > 0, "watchdog timeout must be nonzero");
        assert!(bit < 8, "interrupt bit out of range");
        Watchdog {
            timeout,
            count: timeout,
            bites: 0,
            kicks: 0,
            stream,
            bit,
        }
    }

    /// Times the watchdog has fired.
    pub fn bites(&self) -> u64 {
        self.bites
    }

    /// Kicks received.
    pub fn kicks(&self) -> u64 {
        self.kicks
    }
}

impl Peripheral for Watchdog {
    fn latency(&self, _offset: u16, _write: bool) -> u32 {
        1
    }

    fn read(&mut self, offset: u16) -> u16 {
        match offset {
            1 => self.count as u16,
            2 => self.bites as u16,
            _ => 0,
        }
    }

    fn write(&mut self, offset: u16, _value: u16) {
        if offset == 0 {
            self.kicks += 1;
            self.count = self.timeout;
        }
    }

    fn tick(&mut self, irqs: &mut Vec<IrqRequest>) {
        self.count -= 1;
        if self.count == 0 {
            self.bites += 1;
            self.count = self.timeout;
            irqs.push(IrqRequest {
                stream: self.stream,
                bit: self.bit,
            });
        }
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        // The bite happens during the tick that drains the countdown.
        Some(now + u64::from(self.count.max(1)) - 1)
    }

    fn advance(&mut self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        debug_assert!(
            cycles < u64::from(self.count),
            "advance({cycles}) would bite a watchdog with count {}",
            self.count
        );
        self.count -= cycles as u32;
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = disc_snap::SnapWriter::new();
        w.put_str("watchdog");
        w.put_usize(self.stream);
        w.put_u8(self.bit);
        w.put_u32(self.timeout);
        w.put_u32(self.count);
        w.put_u64(self.bites);
        w.put_u64(self.kicks);
        w.into_bytes()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), disc_snap::SnapError> {
        let mut r = disc_snap::SnapReader::new(state);
        r.expect_str("watchdog")?;
        let stream = r.get_usize()?;
        let bit = r.get_u8()?;
        let timeout = r.get_u32()?;
        if stream != self.stream || bit != self.bit || timeout != self.timeout {
            return Err(disc_snap::SnapError::Corrupt(format!(
                "watchdog construction mismatch: device ({}, {}, {}), \
                 snapshot ({stream}, {bit}, {timeout})",
                self.stream, self.bit, self.timeout
            )));
        }
        self.count = r.get_u32()?;
        self.bites = r.get_u64()?;
        self.kicks = r.get_u64()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bites_without_kicks() {
        let mut w = Watchdog::new(10, 2, 7);
        let mut irqs = Vec::new();
        for _ in 0..25 {
            w.tick(&mut irqs);
        }
        assert_eq!(w.bites(), 2);
        assert_eq!(irqs.len(), 2);
        assert_eq!(irqs[0], IrqRequest { stream: 2, bit: 7 });
    }

    #[test]
    fn kicks_hold_it_off() {
        let mut w = Watchdog::new(10, 0, 7);
        let mut irqs = Vec::new();
        for i in 0..100 {
            if i % 5 == 0 {
                w.write(0, 1);
            }
            w.tick(&mut irqs);
        }
        assert_eq!(w.bites(), 0, "regular kicks prevent bites");
        assert_eq!(w.kicks(), 20);
    }

    #[test]
    fn register_reads() {
        let mut w = Watchdog::new(100, 0, 7);
        let mut irqs = Vec::new();
        for _ in 0..30 {
            w.tick(&mut irqs);
        }
        assert_eq!(w.read(1), 70);
        assert_eq!(w.read(2), 0);
    }

    #[test]
    fn bite_rearms_the_countdown() {
        // A fired watchdog is not dead: it reloads and bites again on the
        // next full timeout, so a wedged system keeps getting reminders.
        let mut w = Watchdog::new(10, 0, 7);
        let mut irqs = Vec::new();
        for _ in 0..10 {
            w.tick(&mut irqs);
        }
        assert_eq!(w.bites(), 1);
        assert_eq!(w.read(1), 10, "count reloaded right after the bite");
        for _ in 0..9 {
            w.tick(&mut irqs);
        }
        assert_eq!(w.bites(), 1, "second bite needs the full timeout");
        w.tick(&mut irqs);
        assert_eq!(w.bites(), 2);
    }

    #[test]
    fn kick_after_bite_resumes_normal_service() {
        let mut w = Watchdog::new(10, 0, 7);
        let mut irqs = Vec::new();
        for _ in 0..10 {
            w.tick(&mut irqs);
        }
        assert_eq!(w.bites(), 1, "firmware was wedged once");
        // Recovery handler kicks; from here on-time kicks keep it quiet.
        for i in 0..100 {
            if i % 5 == 0 {
                w.write(0, 0);
            }
            w.tick(&mut irqs);
        }
        assert_eq!(w.bites(), 1, "no further bites after recovery");
        assert_eq!(w.read(2), 1, "BITES register preserves the history");
    }

    #[test]
    fn last_cycle_kick_just_saves_it() {
        let mut w = Watchdog::new(10, 0, 7);
        let mut irqs = Vec::new();
        for _ in 0..9 {
            w.tick(&mut irqs);
        }
        assert_eq!(w.read(1), 1, "one cycle from biting");
        w.write(0, 0); // kick at the last possible moment
        w.tick(&mut irqs);
        assert_eq!(w.bites(), 0);
        assert_eq!(w.read(1), 9);
    }
}
