//! Integration: DISC1 machine driving real peripherals through the
//! asynchronous bus — timers raising stream interrupts, sensor polling,
//! actuator output, UART traffic.

use disc_bus::{Actuator, ExtRam, PeripheralBus, SensorPort, Shared, Timer, Uart};
use disc_core::{Exit, Machine, MachineConfig};
use disc_isa::Program;

#[test]
fn timer_interrupt_drives_handler_stream() {
    // Stream 1 is a dormant interrupt server woken every 50 cycles by a
    // hardware timer; it increments a counter in internal memory.
    let program = Program::assemble(
        r#"
        .stream 0, main
        .stream 1, server
        .vector 1, 4, tick
    main:
        jmp main
    server:
        stop
    tick:
        lda r0, 0x10
        addi r0, r0, 1
        sta r0, 0x10
        reti
    "#,
    )
    .unwrap();
    let timer = Shared::new(Timer::periodic(50, 1, 4));
    let mut bus = PeripheralBus::new();
    bus.map(0x9000, Timer::REGS, Box::new(timer.handle()))
        .unwrap();
    let mut m = Machine::with_bus(
        MachineConfig::disc1().with_streams(2),
        &program,
        Box::new(bus),
    );
    m.set_idle_exit(false);
    // Deactivate the server until the timer wakes it.
    m.set_reg(1, disc_isa::Reg::Ir, 0);
    m.run(1_000).unwrap();
    assert_eq!(timer.borrow().fires(), 1_000 / 50);
    let count = m.internal_memory().read(0x10);
    assert!(
        (18..=20).contains(&count),
        "handler should have run ~20 times, got {count}"
    );
    // Latencies must be small: the handler stream was dedicated.
    assert!(m.stats().max_irq_latency().unwrap() <= 8);
}

#[test]
fn sensor_poll_reads_current_sample() {
    // Poll a slow sensor (40-cycle conversion) and copy samples to
    // internal memory; the main loop keeps running meanwhile.
    let program = Program::assemble(
        r#"
        .equ SENSOR, 0x9100
        .stream 0, poll
        .stream 1, work
    poll:
        lui r1, 0x91        ; r1 = 0x9100
    again:
        ld  r0, [r1]        ; slow conversion
        sta r0, 0x20
        jmp again
    work:
        ldi r0, 0
    w:  addi r0, r0, 1
        jmp w
    "#,
    )
    .unwrap();
    let sensor = Shared::new(SensorPort::new(25, 40, |seq| 100 + seq));
    let mut bus = PeripheralBus::new();
    bus.map(0x9100, SensorPort::REGS, Box::new(sensor.handle()))
        .unwrap();
    let mut m = Machine::with_bus(
        MachineConfig::disc1().with_streams(2),
        &program,
        Box::new(bus),
    );
    assert_eq!(m.run(2_000).unwrap(), Exit::CycleLimit);
    assert!(sensor.borrow().reads() > 10, "poll loop must keep reading");
    let copied = m.internal_memory().read(0x20);
    assert!(copied >= 100, "sample reached internal memory: {copied}");
    // The compute stream retired far more than the I/O-bound poller.
    assert!(m.stats().retired[1] > m.stats().retired[0] * 2);
}

#[test]
fn actuator_receives_commands_in_order() {
    let program = Program::assemble(
        r#"
        .stream 0, main
    main:
        lui r1, 0xa0        ; actuator at 0xa000
        ldi r0, 1
        st  r0, [r1]
        ldi r0, 2
        st  r0, [r1]
        ldi r0, 3
        st  r0, [r1]
        halt
    "#,
    )
    .unwrap();
    let act = Shared::new(Actuator::new(4));
    let mut bus = PeripheralBus::new();
    bus.map(0xa000, 1, Box::new(act.handle())).unwrap();
    let mut m = Machine::with_bus(MachineConfig::disc1(), &program, Box::new(bus));
    assert_eq!(m.run(1_000).unwrap(), Exit::Halted);
    let hist: Vec<u16> = act.borrow().history().iter().map(|c| c.value).collect();
    assert_eq!(hist, vec![1, 2, 3]);
    // Commands are spaced by at least the write latency (one bus at a time).
    let cycles: Vec<u64> = act.borrow().history().iter().map(|c| c.cycle).collect();
    assert!(cycles.windows(2).all(|w| w[1] - w[0] >= 4));
}

#[test]
fn uart_rx_interrupt_echoes_to_tx() {
    // RX words arrive every 60 cycles and interrupt stream 1, which echoes
    // them back out of the same UART.
    let program = Program::assemble(
        r#"
        .stream 0, main
        .stream 1, idle
        .vector 1, 5, echo
    main:
        jmp main
    idle:
        stop
    echo:
        lui r1, 0xb0        ; uart at 0xb000
        ld  r0, [r1]        ; pop RX
        st  r0, [r1]        ; push TX
        reti
    "#,
    )
    .unwrap();
    let uart = Shared::new(Uart::new(6).with_irq(1, 5));
    uart.borrow_mut().feed(60, vec![0x11, 0x22, 0x33]);
    let mut bus = PeripheralBus::new();
    bus.map(0xb000, Uart::REGS, Box::new(uart.handle()))
        .unwrap();
    let mut m = Machine::with_bus(
        MachineConfig::disc1().with_streams(2),
        &program,
        Box::new(bus),
    );
    m.set_reg(1, disc_isa::Reg::Ir, 0);
    m.set_idle_exit(false);
    m.run(600).unwrap();
    assert_eq!(uart.borrow().transmitted(), &[0x11, 0x22, 0x33]);
    assert_eq!(uart.borrow().rx_pending(), 0);
}

#[test]
fn uart_irq_storm_overflows_bounded_rx_without_wedging() {
    // Words arrive every 5 cycles but each echo costs ~60 cycles of bus
    // time: the 4-word RX FIFO must overflow. The point of the bounded
    // FIFO is that the storm costs *data*, never liveness — the machine
    // keeps running and every word is accounted for.
    let program = Program::assemble(
        r#"
        .stream 0, main
        .stream 1, idle
        .vector 1, 5, echo
    main:
        jmp main
    idle:
        stop
    echo:
        lui r1, 0xb0        ; uart at 0xb000
        ld  r0, [r1]        ; pop RX (30-cycle word time)
        st  r0, [r1]        ; push TX (30 more)
        reti
    "#,
    )
    .unwrap();
    let words: Vec<u16> = (1..=40).collect();
    let uart = Shared::new(Uart::new(30).with_irq(1, 5).with_rx_capacity(4));
    uart.borrow_mut().feed(5, words.clone());
    let mut bus = PeripheralBus::new();
    bus.map(0xb000, Uart::REGS, Box::new(uart.handle()))
        .unwrap();
    let mut m = Machine::with_bus(
        MachineConfig::disc1().with_streams(2),
        &program,
        Box::new(bus),
    );
    m.set_reg(1, disc_isa::Reg::Ir, 0);
    m.set_idle_exit(false);
    assert_eq!(m.run(3_000).unwrap(), Exit::CycleLimit);

    let u = uart.borrow();
    assert!(u.rx_overflows() > 0, "the storm must overflow the FIFO");
    assert!(!u.transmitted().is_empty(), "some words still got through");
    assert_eq!(
        u.transmitted().len() as u64 + u.rx_overflows() + u.rx_pending() as u64,
        words.len() as u64,
        "every stormed word is echoed, dropped, or still queued"
    );
    assert!(
        u.transmitted().windows(2).all(|w| w[0] < w[1]),
        "surviving words keep their arrival order: {:?}",
        u.transmitted()
    );
}

#[test]
fn mixed_bus_with_ram_and_devices() {
    // External RAM plus a timer on one decoded bus; a working buffer is
    // copied out to RAM while the timer counts.
    let program = Program::assemble(
        r#"
        .stream 0, main
    main:
        lui r1, 0x80        ; ext ram base
        ldi r0, 5
        ldi r2, 0           ; index
    copy:
        add r3, r1, r2
        st  r2, [r3]        ; ram[i] = i
        addi r2, r2, 1
        cmp r2, r0
        jnz copy
        halt
    "#,
    )
    .unwrap();
    let ram = Shared::new(ExtRam::new(0x100, 2));
    let timer = Shared::new(Timer::periodic(1000, 0, 7));
    let mut bus = PeripheralBus::new();
    bus.map(0x8000, 0x100, Box::new(ram.handle())).unwrap();
    bus.map(0x9000, Timer::REGS, Box::new(timer.handle()))
        .unwrap();
    let mut m = Machine::with_bus(MachineConfig::disc1(), &program, Box::new(bus));
    assert_eq!(m.run(10_000).unwrap(), Exit::Halted);
    for i in 0..5 {
        assert_eq!(ram.borrow().peek(i), i);
    }
    assert_eq!(ram.borrow().writes(), 5);
}

#[test]
fn watchdog_recovery_runs_on_dedicated_stream() {
    use disc_bus::Watchdog;
    // Stream 0 "wedges" after a while (stops kicking); the watchdog bite
    // interrupt wakes the recovery stream, which records the event and
    // restarts the main loop via fork.
    let program = Program::assemble(
        r#"
        .stream 0, main
        .stream 1, dormant
        .vector 1, 7, recover
    main:
        ldi r4, 0
        lui r4, 0x92        ; watchdog KICK register
        ldi r5, 6           ; kicks before wedging
    loop:
        st  r5, [r4]        ; kick
        ldi r0, 30
    busy:
        subi r0, r0, 1
        jnz busy
        subi r5, r5, 1
        jnz loop
    wedge:
        jmp wedge           ; stops kicking forever
    dormant:
        stop
    recover:
        lda r0, 0x11
        addi r0, r0, 1
        sta r0, 0x11        ; recovery count
        reti
    "#,
    )
    .unwrap();
    let dog = Shared::new(Watchdog::new(400, 1, 7));
    let mut bus = PeripheralBus::new();
    bus.map(0x9200, Watchdog::REGS, Box::new(dog.handle()))
        .unwrap();
    let mut m = Machine::with_bus(
        MachineConfig::disc1().with_streams(2),
        &program,
        Box::new(bus),
    );
    m.set_idle_exit(false);
    m.set_reg(1, disc_isa::Reg::Ir, 0);
    m.run(4_000).unwrap();
    assert!(dog.borrow().kicks() >= 6, "main kicked while healthy");
    assert!(dog.borrow().bites() >= 1, "watchdog must bite after wedge");
    let recoveries = m.internal_memory().read(0x11);
    assert!(
        recoveries >= 1,
        "recovery handler must run on the dedicated stream"
    );
    assert_eq!(
        m.internal_memory().read(0x11),
        dog.borrow().bites() as u16,
        "one recovery per bite"
    );
}
