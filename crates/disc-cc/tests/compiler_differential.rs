//! Differential testing of the compiler: random programs are evaluated by
//! a reference interpreter written directly over the AST, then compiled
//! and executed on the cycle-accurate DISC1 machine — every variable's
//! final value must agree.

use std::collections::HashMap;

use disc_cc::{compile, BinOp, Expr, Stmt};
use disc_core::{Exit, Machine, MachineConfig};
use proptest::prelude::*;

// ---- reference interpreter ------------------------------------------------

struct Interp {
    vars: HashMap<String, u16>,
    mem: HashMap<u16, u16>,
    fuel: u64,
}

impl Interp {
    fn eval(&mut self, e: &Expr) -> u16 {
        match e {
            Expr::Num(v) => *v,
            Expr::Var(n) => self.vars[n.as_str()],
            Expr::Mem(a) => {
                let addr = self.eval(a);
                self.mem.get(&addr).copied().unwrap_or(0)
            }
            Expr::Bin(op, a, b) => {
                let x = self.eval(a);
                let y = self.eval(b);
                op.eval(x, y)
            }
            Expr::Neg(a) => self.eval(a).wrapping_neg(),
            Expr::Not(a) => (self.eval(a) == 0) as u16,
            Expr::AndAnd(a, b) => {
                if self.eval(a) == 0 {
                    0
                } else {
                    (self.eval(b) != 0) as u16
                }
            }
            Expr::OrOr(a, b) => {
                if self.eval(a) != 0 {
                    1
                } else {
                    (self.eval(b) != 0) as u16
                }
            }
        }
    }

    fn run(&mut self, stmts: &[Stmt]) -> bool {
        for s in stmts {
            if self.fuel == 0 {
                return false;
            }
            self.fuel -= 1;
            match s {
                Stmt::Declare(n, e) | Stmt::Assign(n, e) => {
                    let v = self.eval(e);
                    self.vars.insert(n.clone(), v);
                }
                Stmt::Store(a, e) => {
                    let addr = self.eval(a);
                    let v = self.eval(e);
                    self.mem.insert(addr, v);
                }
                Stmt::While(c, body) => {
                    while self.eval(c) != 0 {
                        if self.fuel == 0 || !self.run(body) {
                            return false;
                        }
                        self.fuel = self.fuel.saturating_sub(1);
                    }
                }
                Stmt::If(c, t, e) => {
                    let branch = if self.eval(c) != 0 { t } else { e };
                    if !self.run(branch) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

// ---- random-program generator ---------------------------------------------

const VAR_NAMES: [&str; 4] = ["a", "b", "c", "d"];

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

/// Expressions over pre-declared variables a..d, depth-bounded so the
/// window always suffices.
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        any::<u16>().prop_map(Expr::Num),
        (0usize..VAR_NAMES.len()).prop_map(|i| Expr::Var(VAR_NAMES[i].into())),
        // Reads of a small fixed memory window the programs also write.
        (0u16..8).prop_map(|a| Expr::Mem(Box::new(Expr::Num(0x80 + a)))),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_expr(depth - 1);
    prop_oneof![
        4 => leaf,
        1 => sub.clone().prop_map(|e| Expr::Neg(Box::new(e))),
        1 => sub.clone().prop_map(|e| Expr::Not(Box::new(e))),
        4 => (arb_binop(), sub.clone(), sub.clone())
            .prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b))),
        1 => (sub.clone(), sub.clone())
            .prop_map(|(a, b)| Expr::AndAnd(Box::new(a), Box::new(b))),
        1 => (sub.clone(), sub)
            .prop_map(|(a, b)| Expr::OrOr(Box::new(a), Box::new(b))),
    ]
    .boxed()
}

/// Straight-line + bounded-loop statements over a..d.
fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let assign = (0usize..VAR_NAMES.len(), arb_expr(2))
        .prop_map(|(i, e)| Stmt::Assign(VAR_NAMES[i].into(), e));
    let store = (0u16..8, arb_expr(2)).prop_map(|(a, e)| Stmt::Store(Expr::Num(0x80 + a), e));
    if depth == 0 {
        return prop_oneof![assign, store].boxed();
    }
    let body = prop::collection::vec(arb_stmt(depth - 1), 1..4);
    prop_oneof![
        3 => assign,
        2 => store,
        1 => (arb_expr(1), body.clone(), body.clone()).prop_map(|(c, t, e)| Stmt::If(c, t, e)),
        // Bounded loop: `d` is preset to 5 and strictly decreases, so the
        // loop terminates unless its body re-raises `d` — those cases run
        // the interpreter out of fuel and are discarded.
        1 => body.prop_map(|b| {
            let mut inner = b;
            inner.push(Stmt::Assign(
                "d".into(),
                Expr::Bin(
                    BinOp::Sub,
                    Box::new(Expr::Var("d".into())),
                    Box::new(Expr::Num(1)),
                ),
            ));
            Stmt::If(
                Expr::Num(1),
                vec![
                    Stmt::Assign("d".into(), Expr::Num(5)),
                    Stmt::While(Expr::Var("d".into()), inner),
                ],
                Vec::new(),
            )
        }),
    ]
    .boxed()
}

fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Num(v) => format!("{v}"),
        Expr::Var(n) => n.clone(),
        Expr::Mem(a) => format!("mem[{}]", render_expr(a)),
        Expr::Neg(a) => format!("(-{})", render_expr(a)),
        Expr::Not(a) => format!("(!{})", render_expr(a)),
        Expr::AndAnd(a, b) => format!("({} && {})", render_expr(a), render_expr(b)),
        Expr::OrOr(a, b) => format!("({} || {})", render_expr(a), render_expr(b)),
        Expr::Bin(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::And => "&",
                BinOp::Or => "|",
                BinOp::Xor => "^",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
            };
            format!("({} {sym} {})", render_expr(a), render_expr(b))
        }
    }
}

fn render_stmt(s: &Stmt, out: &mut String) {
    match s {
        Stmt::Declare(n, e) => out.push_str(&format!("var {n} = {};\n", render_expr(e))),
        Stmt::Assign(n, e) => out.push_str(&format!("{n} = {};\n", render_expr(e))),
        Stmt::Store(a, e) => {
            out.push_str(&format!("mem[{}] = {};\n", render_expr(a), render_expr(e)))
        }
        Stmt::While(c, body) => {
            out.push_str(&format!("while ({}) {{\n", render_expr(c)));
            for s in body {
                render_stmt(s, out);
            }
            out.push_str("}\n");
        }
        Stmt::If(c, t, e) => {
            out.push_str(&format!("if ({}) {{\n", render_expr(c)));
            for s in t {
                render_stmt(s, out);
            }
            out.push('}');
            if e.is_empty() {
                out.push('\n');
            } else {
                out.push_str(" else {\n");
                for s in e {
                    render_stmt(s, out);
                }
                out.push_str("}\n");
            }
        }
    }
}

fn render_program(stmts: &[Stmt]) -> String {
    let mut src = String::new();
    // Pre-declare the working variables.
    for (i, name) in VAR_NAMES.iter().enumerate() {
        src.push_str(&format!("var {name} = {};\n", i * 3 + 1));
    }
    for s in stmts {
        render_stmt(s, &mut src);
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Compiled execution matches the reference interpreter on every
    /// variable and every touched memory word.
    #[test]
    fn compiled_matches_interpreter(body in prop::collection::vec(arb_stmt(2), 1..8)) {
        let src = render_program(&body);
        let compiled = match compile(&src) {
            Ok(c) => c,
            // Depth-limit rejections are legitimate; skip those cases.
            Err(e) if e.message().contains("too deep") => return Ok(()),
            Err(e) => panic!("compile failed on:\n{src}\n{e}"),
        };

        // Reference run.
        // Keep the fuel small relative to the machine's cycle budget: any
        // program the interpreter finishes must comfortably fit on the
        // machine (≤ ~50 cycles per interpreted statement).
        let mut interp = Interp {
            vars: HashMap::new(),
            mem: HashMap::new(),
            fuel: 20_000,
        };
        let full = disc_cc::compile(&src).unwrap();
        let _ = full; // compiled above; parse again through the public API
        let ast = {
            // Re-derive the AST the same way the compiler does: prepend
            // the declarations, then the generated body.
            let mut v = Vec::new();
            for (i, name) in VAR_NAMES.iter().enumerate() {
                v.push(Stmt::Declare(name.to_string(), Expr::Num((i * 3 + 1) as u16)));
            }
            v.extend(body.iter().cloned());
            v
        };
        prop_assume!(interp.run(&ast), "interpreter ran out of fuel");

        // Machine run.
        let mut m = Machine::new(
            MachineConfig::disc1().with_streams(1),
            &compiled.program,
        );
        let exit = m.run(3_000_000).expect("machine runs");
        prop_assert_eq!(exit, Exit::Halted, "program must halt:\n{}", src);

        for (name, addr) in compiled.variables() {
            let got = m.internal_memory().read(*addr);
            let want = interp.vars[name.as_str()];
            prop_assert_eq!(
                got, want,
                "variable {} diverged in:\n{}", name, src
            );
        }
        for (addr, want) in &interp.mem {
            prop_assert_eq!(
                m.internal_memory().read(*addr), *want,
                "memory {:#x} diverged in:\n{}", addr, src
            );
        }
    }
}
