//! Code generation onto the DISC1 stack-window register file.
//!
//! Expressions evaluate Sethi–Ullman-style in the visible window registers
//! (`r0` upward); variables live in internal memory so control flow and
//! stream preemption can never clobber them. Comparisons materialize 0/1
//! through conditional jumps over an `ldi` (DISC1 has no set-on-condition
//! instruction).

use std::collections::HashMap;

use disc_isa::{AluImmOp, AluOp, AwpMode, Cond, Instruction, Program, ProgramBuilder, Reg};

use crate::ast::{expr_depth, BinOp, Expr, Stmt, MAX_EXPR_DEPTH};
use crate::parser::parse;
use crate::CompileError;

/// First internal-memory word used for compiler-allocated variables.
pub const VAR_BASE: u16 = 0x0200;

/// Variable slots available per stream.
pub const VARS_PER_STREAM: u16 = 64;

/// Program-memory region size reserved per stream.
const CODE_STRIDE: u16 = 0x0400;

/// A compiled program together with its variable allocation.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The runnable program (stream entries set).
    pub program: Program,
    vars: Vec<(String, u16)>,
}

impl CompiledProgram {
    /// Declared variables and their internal-memory addresses, in
    /// declaration order. Multi-stream compiles prefix names with
    /// `s<stream>.`.
    pub fn variables(&self) -> &[(String, u16)] {
        &self.vars
    }

    /// Address of variable `name`, if declared.
    pub fn address_of(&self, name: &str) -> Option<u16> {
        self.vars.iter().find(|(n, _)| n == name).map(|(_, a)| *a)
    }
}

/// Compiles a single source into a stream-0 program.
///
/// # Errors
///
/// Returns [`CompileError`] on syntax errors, undeclared/duplicate
/// variables, too many variables, or expressions deeper than the visible
/// window.
pub fn compile(source: &str) -> Result<CompiledProgram, CompileError> {
    compile_streams(&[source])
}

/// Compiles one source per instruction stream into a single program; each
/// stream gets its own code region and variable slots.
///
/// # Errors
///
/// Returns [`CompileError`] as for [`compile`], or when more than 8
/// streams are requested.
pub fn compile_streams(sources: &[&str]) -> Result<CompiledProgram, CompileError> {
    if sources.is_empty() || sources.len() > disc_isa::MAX_STREAMS {
        return Err(CompileError::new(1, "1..=8 stream sources required"));
    }
    let mut builder = ProgramBuilder::new();
    let mut all_vars = Vec::new();
    for (stream, source) in sources.iter().enumerate() {
        let stmts = parse(source)?;
        builder.org(stream as u16 * CODE_STRIDE);
        builder.entry(stream);
        let mut cg = CodeGen {
            b: &mut builder,
            vars: HashMap::new(),
            order: Vec::new(),
            next_addr: VAR_BASE + stream as u16 * VARS_PER_STREAM,
            limit: VAR_BASE + (stream as u16 + 1) * VARS_PER_STREAM,
        };
        cg.block(&stmts)?;
        // A single-stream program halts the machine; in a multi-stream
        // compile each stream just deactivates so the others keep running.
        cg.b.emit(if sources.len() == 1 {
            Instruction::Halt
        } else {
            Instruction::Stop
        });
        for (name, addr) in cg.order {
            let label = if sources.len() == 1 {
                name
            } else {
                format!("s{stream}.{name}")
            };
            all_vars.push((label, addr));
        }
    }
    Ok(CompiledProgram {
        program: builder.build(),
        vars: all_vars,
    })
}

struct CodeGen<'a> {
    b: &'a mut ProgramBuilder,
    vars: HashMap<String, u16>,
    order: Vec<(String, u16)>,
    next_addr: u16,
    limit: u16,
}

impl CodeGen<'_> {
    fn block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Declare(name, value) => {
                if self.vars.contains_key(name) {
                    return Err(CompileError::new(1, format!("duplicate variable `{name}`")));
                }
                if self.next_addr >= self.limit {
                    return Err(CompileError::new(1, "too many variables"));
                }
                let addr = self.next_addr;
                self.next_addr += 1;
                self.vars.insert(name.clone(), addr);
                self.order.push((name.clone(), addr));
                self.eval(value, 0)?;
                self.b.emit(Instruction::Sta {
                    awp: AwpMode::None,
                    src: Reg::R0,
                    addr,
                });
            }
            Stmt::Assign(name, value) => {
                let addr = self.var_addr(name)?;
                self.eval(value, 0)?;
                self.b.emit(Instruction::Sta {
                    awp: AwpMode::None,
                    src: Reg::R0,
                    addr,
                });
            }
            Stmt::Store(addr, value) => match addr {
                Expr::Num(a) if *a < 0x1000 => {
                    self.eval(value, 0)?;
                    self.b.emit(Instruction::Sta {
                        awp: AwpMode::None,
                        src: Reg::R0,
                        addr: *a,
                    });
                }
                _ => {
                    self.eval(addr, 0)?;
                    self.eval(value, 1)?;
                    self.b.emit(Instruction::St {
                        awp: AwpMode::None,
                        src: Reg::R1,
                        base: Reg::R0,
                        offset: 0,
                    });
                }
            },
            Stmt::While(cond, body) => {
                let top = self.b.here();
                self.test(cond)?;
                let exit_hole = self.b.reserve();
                self.block(body)?;
                self.b.emit(Instruction::Jmp {
                    cond: Cond::Always,
                    target: top,
                });
                let end = self.b.here();
                self.b.patch(
                    exit_hole,
                    Instruction::Jmp {
                        cond: Cond::Z,
                        target: end,
                    },
                );
            }
            Stmt::If(cond, then, otherwise) => {
                self.test(cond)?;
                let else_hole = self.b.reserve();
                self.block(then)?;
                if otherwise.is_empty() {
                    let end = self.b.here();
                    self.b.patch(
                        else_hole,
                        Instruction::Jmp {
                            cond: Cond::Z,
                            target: end,
                        },
                    );
                } else {
                    let end_hole = self.b.reserve();
                    let else_at = self.b.here();
                    self.block(otherwise)?;
                    let end = self.b.here();
                    self.b.patch(
                        else_hole,
                        Instruction::Jmp {
                            cond: Cond::Z,
                            target: else_at,
                        },
                    );
                    self.b.patch(
                        end_hole,
                        Instruction::Jmp {
                            cond: Cond::Always,
                            target: end,
                        },
                    );
                }
            }
        }
        Ok(())
    }

    /// Evaluates `cond` and leaves the Z flag reflecting "cond == 0" so a
    /// following `jz` skips the guarded region.
    fn test(&mut self, cond: &Expr) -> Result<(), CompileError> {
        self.eval(cond, 0)?;
        self.b.emit(Instruction::AluImm {
            op: AluImmOp::Cmpi,
            awp: AwpMode::None,
            rd: Reg::R0,
            rs: Reg::R0,
            imm: 0,
        });
        Ok(())
    }

    fn var_addr(&self, name: &str) -> Result<u16, CompileError> {
        self.vars
            .get(name)
            .copied()
            .ok_or_else(|| CompileError::new(1, format!("undeclared variable `{name}`")))
    }

    fn reg(&self, depth: usize) -> Result<Reg, CompileError> {
        if depth >= MAX_EXPR_DEPTH {
            return Err(CompileError::new(
                1,
                "expression too deep for the visible window (max 8 registers)",
            ));
        }
        Ok(Reg::window(depth as u8))
    }

    /// Emits code leaving the value of `e` in `window[depth]`.
    fn eval(&mut self, e: &Expr, depth: usize) -> Result<(), CompileError> {
        if depth + expr_depth(e) > MAX_EXPR_DEPTH {
            return Err(CompileError::new(
                1,
                "expression too deep for the visible window (max 8 registers)",
            ));
        }
        let rd = self.reg(depth)?;
        match e {
            Expr::Num(v) => self.load_const(rd, *v),
            Expr::Var(name) => {
                let addr = self.var_addr(name)?;
                self.b.emit(Instruction::Lda {
                    awp: AwpMode::None,
                    rd,
                    addr,
                });
            }
            Expr::Mem(addr) => match addr.as_ref() {
                Expr::Num(a) if *a < 0x1000 => {
                    self.b.emit(Instruction::Lda {
                        awp: AwpMode::None,
                        rd,
                        addr: *a,
                    });
                }
                _ => {
                    self.eval(addr, depth)?;
                    self.b.emit(Instruction::Ld {
                        awp: AwpMode::None,
                        rd,
                        base: rd,
                        offset: 0,
                    });
                }
            },
            Expr::Neg(a) => {
                // Two's complement in place: -x = !x + 1.
                self.eval(a, depth)?;
                self.b.emit(Instruction::Alu {
                    op: AluOp::Not,
                    awp: AwpMode::None,
                    rd,
                    rs: rd,
                    rt: Reg::R0,
                });
                self.b.emit(Instruction::AluImm {
                    op: AluImmOp::Addi,
                    awp: AwpMode::None,
                    rd,
                    rs: rd,
                    imm: 1,
                });
            }
            Expr::Not(a) => {
                self.eval(a, depth)?;
                self.b.emit(Instruction::AluImm {
                    op: AluImmOp::Cmpi,
                    awp: AwpMode::None,
                    rd,
                    rs: rd,
                    imm: 0,
                });
                self.materialize(rd, Cond::Z);
            }
            Expr::AndAnd(a, b) => {
                // Short circuit: if a == 0, skip b and yield 0.
                self.eval(a, depth)?;
                self.cmpi_zero(rd);
                let skip = self.b.reserve();
                self.eval(b, depth)?;
                self.cmpi_zero(rd);
                let done = self.b.here();
                self.b.patch(
                    skip,
                    Instruction::Jmp {
                        cond: Cond::Z,
                        target: done,
                    },
                );
                self.materialize(rd, Cond::Nz);
            }
            Expr::OrOr(a, b) => {
                // Short circuit: if a != 0, skip b and yield 1.
                self.eval(a, depth)?;
                self.cmpi_zero(rd);
                let skip = self.b.reserve();
                self.eval(b, depth)?;
                self.cmpi_zero(rd);
                let done = self.b.here();
                self.b.patch(
                    skip,
                    Instruction::Jmp {
                        cond: Cond::Nz,
                        target: done,
                    },
                );
                self.materialize(rd, Cond::Nz);
            }
            Expr::Bin(op, a, b) => {
                self.eval(a, depth)?;
                self.eval(b, depth + 1)?;
                let rt = self.reg(depth + 1)?;
                match op {
                    BinOp::Add
                    | BinOp::Sub
                    | BinOp::Mul
                    | BinOp::And
                    | BinOp::Or
                    | BinOp::Xor
                    | BinOp::Shl
                    | BinOp::Shr => {
                        let alu = match op {
                            BinOp::Add => AluOp::Add,
                            BinOp::Sub => AluOp::Sub,
                            BinOp::Mul => AluOp::Mul,
                            BinOp::And => AluOp::And,
                            BinOp::Or => AluOp::Or,
                            BinOp::Xor => AluOp::Xor,
                            BinOp::Shl => AluOp::Shl,
                            BinOp::Shr => AluOp::Shr,
                            _ => unreachable!(),
                        };
                        self.b.emit(Instruction::Alu {
                            op: alu,
                            awp: AwpMode::None,
                            rd,
                            rs: rd,
                            rt,
                        });
                    }
                    // Unsigned comparisons via the carry flag:
                    // `cmp x, y` sets C iff x >= y.
                    BinOp::Eq => self.compare(rd, rt, false, Cond::Z),
                    BinOp::Ne => self.compare(rd, rt, false, Cond::Nz),
                    BinOp::Lt => self.compare(rd, rt, false, Cond::Nc),
                    BinOp::Ge => self.compare(rd, rt, false, Cond::C),
                    BinOp::Gt => self.compare(rd, rt, true, Cond::Nc),
                    BinOp::Le => self.compare(rd, rt, true, Cond::C),
                }
            }
        }
        Ok(())
    }

    /// Emits `cmpi rd, 0` (used by the logical operators).
    fn cmpi_zero(&mut self, rd: Reg) {
        self.b.emit(Instruction::AluImm {
            op: AluImmOp::Cmpi,
            awp: AwpMode::None,
            rd,
            rs: rd,
            imm: 0,
        });
    }

    fn load_const(&mut self, rd: Reg, v: u16) {
        if v <= 2047 {
            self.b.emit(Instruction::Ldi {
                awp: AwpMode::None,
                rd,
                imm: v as i16,
            });
        } else {
            self.b.emit(Instruction::Ldi {
                awp: AwpMode::None,
                rd,
                imm: (v & 0xff) as i16,
            });
            self.b.emit(Instruction::Lui {
                rd,
                imm: (v >> 8) as u8,
            });
        }
    }

    /// Emits `cmp` (optionally with swapped operands) and materializes
    /// 1-if-`cond` into `rd`.
    fn compare(&mut self, rd: Reg, rt: Reg, swap: bool, cond: Cond) {
        let (rs, rt) = if swap { (rt, rd) } else { (rd, rt) };
        self.b.emit(Instruction::Alu {
            op: AluOp::Cmp,
            awp: AwpMode::None,
            rd: Reg::R0,
            rs,
            rt,
        });
        self.materialize(rd, cond);
    }

    /// `rd = 1` if `cond` holds for the current flags, else `0`
    /// (`ldi` does not disturb the flags).
    fn materialize(&mut self, rd: Reg, cond: Cond) {
        self.b.emit(Instruction::Ldi {
            awp: AwpMode::None,
            rd,
            imm: 1,
        });
        let hole = self.b.reserve();
        self.b.emit(Instruction::Ldi {
            awp: AwpMode::None,
            rd,
            imm: 0,
        });
        let end = self.b.here();
        self.b.patch(hole, Instruction::Jmp { cond, target: end });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_and_run;

    #[test]
    fn arithmetic_and_variables() {
        let r = compile_and_run("var x = 6; var y = x * 7;", 10_000).unwrap();
        assert_eq!(r.var("y"), Some(42));
    }

    #[test]
    fn while_loop_sums() {
        let r = compile_and_run(
            "var n = 10; var sum = 0; while (n) { sum = sum + n; n = n - 1; }",
            100_000,
        )
        .unwrap();
        assert_eq!(r.var("sum"), Some(55));
        assert_eq!(r.var("n"), Some(0));
    }

    #[test]
    fn if_else_branches() {
        let r = compile_and_run(
            "var a = 3; var b = 9; var max = 0; \
             if (a > b) { max = a; } else { max = b; }",
            10_000,
        )
        .unwrap();
        assert_eq!(r.var("max"), Some(9));
    }

    #[test]
    fn comparisons_produce_booleans() {
        let r = compile_and_run(
            "var lt = 3 < 4; var ge = 3 >= 4; var eq = 5 == 5; \
             var ne = 5 != 5; var le = 4 <= 4; var gt = 4 > 4;",
            10_000,
        )
        .unwrap();
        assert_eq!(r.var("lt"), Some(1));
        assert_eq!(r.var("ge"), Some(0));
        assert_eq!(r.var("eq"), Some(1));
        assert_eq!(r.var("ne"), Some(0));
        assert_eq!(r.var("le"), Some(1));
        assert_eq!(r.var("gt"), Some(0));
    }

    #[test]
    fn memory_store_and_load() {
        let r = compile_and_run(
            "mem[0x40] = 123; var x = mem[0x40] + 1; var i = 2; mem[0x40 + i] = x;",
            10_000,
        )
        .unwrap();
        assert_eq!(r.memory(0x40), 123);
        assert_eq!(r.var("x"), Some(124));
        assert_eq!(r.memory(0x42), 124);
    }

    #[test]
    fn unary_operators() {
        let r = compile_and_run("var a = -1; var b = !0; var c = !7;", 10_000).unwrap();
        assert_eq!(r.var("a"), Some(0xffff));
        assert_eq!(r.var("b"), Some(1));
        assert_eq!(r.var("c"), Some(0));
    }

    #[test]
    fn large_constants_use_lui() {
        let r = compile_and_run("var k = 0xbeef;", 10_000).unwrap();
        assert_eq!(r.var("k"), Some(0xbeef));
    }

    #[test]
    fn nested_control_flow() {
        // Count primes below 20 by trial division.
        let src = r#"
            var count = 0;
            var n = 2;
            while (n < 20) {
                var_is_prime = 0;
                n = n;
            }
        "#;
        // The flat-scope language has no `var_is_prime` declared — error.
        assert!(compile(src).is_err());
        let src = r#"
            var count = 0;
            var n = 2;
            while (n < 20) {
                var d = 0; var prime = 0;
                d = 2;
                prime = 1;
                while (d * d <= n) {
                    if (n - (n / 1) == 0) { prime = prime; }
                    d = d + 1;
                }
                if (prime) { count = count + 1; }
                n = n + 1;
            }
        "#;
        // No division in the language; this variant is just a structural
        // smoke test of deep nesting (declarations are flat-scoped, so the
        // second iteration would redeclare — expect that error).
        assert!(compile(src).is_err());
        // A legal deeply nested program:
        let r = compile_and_run(
            "var x = 0; var i = 0; \
             while (i < 3) { var_dummy = 0; i = i + 1; }",
            10_000,
        );
        assert!(r.is_err(), "undeclared assignment still rejected");
        let r = compile_and_run(
            "var x = 0; var i = 0; \
             while (i < 3) { if (i == 1) { x = x + 10; } else { x = x + 1; } i = i + 1; }",
            100_000,
        )
        .unwrap();
        assert_eq!(r.var("x"), Some(12));
    }

    #[test]
    fn short_circuit_logic() {
        let r = compile_and_run(
            "var a = 1 && 2; var b = 0 && 1; var c = 0 || 3; var d = 0 || 0; \
             var guard = 0; var x = (guard && mem[0x3ff]) || 7;",
            10_000,
        )
        .unwrap();
        assert_eq!(r.var("a"), Some(1));
        assert_eq!(r.var("b"), Some(0));
        assert_eq!(r.var("c"), Some(1));
        assert_eq!(r.var("d"), Some(0));
        assert_eq!(r.var("x"), Some(1));
    }

    #[test]
    fn logic_in_conditions() {
        let r = compile_and_run(
            "var i = 0; var hits = 0; \
             while (i < 10) { \
                 if (i > 2 && i < 7) { hits = hits + 1; } \
                 i = i + 1; \
             }",
            100_000,
        )
        .unwrap();
        assert_eq!(r.var("hits"), Some(4));
    }

    #[test]
    fn expression_depth_enforced() {
        // Right-leaning chain needs depth = chain length + 1.
        let deep = "var x = 1 + (1 + (1 + (1 + (1 + (1 + (1 + (1 + 1)))))));";
        assert!(compile(deep).is_err());
        let ok = "var x = 1 + (1 + (1 + (1 + (1 + (1 + 1)))));";
        assert_eq!(compile_and_run(ok, 10_000).unwrap().var("x"), Some(7));
    }

    #[test]
    fn duplicate_and_undeclared_rejected() {
        assert!(compile("var x = 1; var x = 2;").is_err());
        assert!(compile("y = 1;").is_err());
    }

    #[test]
    fn multi_stream_compilation() {
        let p =
            compile_streams(&["var a = 1; mem[0x80] = a;", "var b = 2; mem[0x81] = b;"]).unwrap();
        assert!(p.address_of("s0.a").is_some());
        assert!(p.address_of("s1.b").is_some());
        assert_ne!(p.address_of("s0.a"), p.address_of("s1.b"));
        use disc_core::{Machine, MachineConfig};
        let mut m = Machine::new(MachineConfig::disc1().with_streams(2), &p.program);
        // Stream 0 halts the machine; run until both stores are visible.
        for _ in 0..10_000 {
            if m.internal_memory().read(0x80) == 1 && m.internal_memory().read(0x81) == 2 {
                break;
            }
            if m.step().unwrap() != disc_core::Status::Running {
                break;
            }
        }
        assert_eq!(m.internal_memory().read(0x80), 1);
        assert_eq!(m.internal_memory().read(0x81), 2);
    }
}
