//! **discc** — a small structured language compiled to DISC1 assembly.
//!
//! The paper's future work notes that *"numerous operating system,
//! compiler, and other software questions also need to be addressed"*.
//! This crate addresses the compiler question at small scale: a C-flavored
//! expression language with variables, `while`/`if` control flow and
//! direct internal-memory access, compiled to stack-window code. Nested
//! expressions evaluate in the visible window registers (the register file
//! the DISC stack window was designed for), variables live in internal
//! memory, and the emitted program runs on both the DISC machine and the
//! baseline.
//!
//! # Language
//!
//! ```text
//! var n = 10;                 // declaration (16-bit unsigned, wrapping)
//! var sum = 0;
//! while (n) {                 // while / if-else, C precedence
//!     sum = sum + n * n;
//!     n = n - 1;
//! }
//! mem[0x20] = sum;            // internal-memory store
//! var copy = mem[0x20];       // internal-memory load
//! if (sum >= 300) { mem[0x21] = 1; } else { mem[0x21] = 2; }
//! ```
//!
//! Operators (by precedence, loosest first): `||`, `&&` (both
//! short-circuit), `== != < <= > >=`, `+ -`, `* & | ^ << >>`, unary `-`
//! and `!`. Comparisons and logical operators yield `0`/`1`; any nonzero
//! value is true.
//!
//! # Example
//!
//! ```
//! use disc_cc::compile_and_run;
//!
//! let vars = compile_and_run(
//!     "var x = 7; var y = x * x + 1; mem[0x10] = y;",
//!     10_000,
//! )?;
//! assert_eq!(vars.var("y"), Some(50));
//! assert_eq!(vars.memory(0x10), 50);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod ast;
mod codegen;
mod lexer;
mod parser;

pub use ast::{BinOp, Expr, Stmt};
pub use codegen::{compile, compile_streams, CompiledProgram};
pub use lexer::Token;

use std::fmt;

/// Error raised while compiling source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    line: usize,
    message: String,
}

impl CompileError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        CompileError {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Final machine state of a [`compile_and_run`] execution.
#[derive(Debug, Clone)]
pub struct RunResult {
    vars: Vec<(String, u16)>,
    memory: Vec<u16>,
}

impl RunResult {
    /// Final value of variable `name`, if it was declared.
    pub fn var(&self, name: &str) -> Option<u16> {
        self.vars.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Final value of internal-memory word `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside internal memory.
    pub fn memory(&self, addr: u16) -> u16 {
        self.memory[addr as usize]
    }

    /// All declared variables with their final values, in declaration
    /// order.
    pub fn vars(&self) -> &[(String, u16)] {
        &self.vars
    }
}

/// Compiles `source` and runs it to completion on a single-stream DISC1.
///
/// # Errors
///
/// Returns [`CompileError`] for source errors; panics only on internal
/// compiler bugs (the emitted program failing to execute).
///
/// # Panics
///
/// Panics if the compiled program does not halt within `max_cycles` — for
/// terminating programs pick a generous budget.
pub fn compile_and_run(source: &str, max_cycles: u64) -> Result<RunResult, CompileError> {
    use disc_core::{Machine, MachineConfig};

    let compiled = compile(source)?;
    let mut m = Machine::new(MachineConfig::disc1().with_streams(1), &compiled.program);
    let exit = m.run(max_cycles).expect("compiled program executes");
    assert_eq!(
        exit,
        disc_core::Exit::Halted,
        "compiled program must halt within {max_cycles} cycles"
    );
    let vars = compiled
        .variables()
        .iter()
        .map(|(name, addr)| (name.clone(), m.internal_memory().read(*addr)))
        .collect();
    let memory = (0..m.internal_memory().len() as u16)
        .map(|a| m.internal_memory().read(a))
        .collect();
    Ok(RunResult { vars, memory })
}
