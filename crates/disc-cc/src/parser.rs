//! Recursive-descent parser for the discc language.

use crate::ast::{BinOp, Expr, Stmt};
use crate::lexer::{lex, Token};
use crate::CompileError;

pub(crate) fn parse(source: &str) -> Result<Vec<Stmt>, CompileError> {
    let lexed = lex(source)?;
    let mut p = Parser {
        tokens: lexed.tokens,
        pos: 0,
    };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.statement()?);
    }
    Ok(stmts)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|(_, l)| *l)
            .unwrap_or(1)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn eat_sym(&mut self, sym: &str) -> Result<(), CompileError> {
        match self.advance() {
            Some(Token::Sym(s)) if s == sym => Ok(()),
            other => Err(CompileError::new(
                self.line(),
                format!("expected `{sym}`, found {other:?}"),
            )),
        }
    }

    fn try_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn statement(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.advance() {
            Some(Token::Var) => {
                let name = self.ident()?;
                self.eat_sym("=")?;
                let value = self.expr()?;
                self.eat_sym(";")?;
                Ok(Stmt::Declare(name, value))
            }
            Some(Token::Ident(name)) => {
                self.eat_sym("=")?;
                let value = self.expr()?;
                self.eat_sym(";")?;
                Ok(Stmt::Assign(name, value))
            }
            Some(Token::Mem) => {
                self.eat_sym("[")?;
                let addr = self.expr()?;
                self.eat_sym("]")?;
                self.eat_sym("=")?;
                let value = self.expr()?;
                self.eat_sym(";")?;
                Ok(Stmt::Store(addr, value))
            }
            Some(Token::While) => {
                self.eat_sym("(")?;
                let cond = self.expr()?;
                self.eat_sym(")")?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body))
            }
            Some(Token::If) => {
                self.eat_sym("(")?;
                let cond = self.expr()?;
                self.eat_sym(")")?;
                let then = self.block()?;
                let otherwise = if matches!(self.peek(), Some(Token::Else)) {
                    self.pos += 1;
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, otherwise))
            }
            other => Err(CompileError::new(
                line,
                format!("expected a statement, found {other:?}"),
            )),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.eat_sym("{")?;
        let mut body = Vec::new();
        while !matches!(self.peek(), Some(Token::Sym("}"))) {
            if self.at_end() {
                return Err(CompileError::new(self.line(), "unterminated block"));
            }
            body.push(self.statement()?);
        }
        self.pos += 1; // consume `}`
        Ok(body)
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.advance() {
            Some(Token::Ident(name)) => Ok(name),
            other => Err(CompileError::new(
                self.line(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    /// expr := logic_or
    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.logic_or()
    }

    /// logic_or := logic_and ("||" logic_and)*
    fn logic_or(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.logic_and()?;
        while matches!(self.peek(), Some(Token::Sym("||"))) {
            self.pos += 1;
            let rhs = self.logic_and()?;
            lhs = Expr::OrOr(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// logic_and := comparison ("&&" comparison)*
    fn logic_and(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.comparison()?;
        while matches!(self.peek(), Some(Token::Sym("&&"))) {
            self.pos += 1;
            let rhs = self.comparison()?;
            lhs = Expr::AndAnd(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// comparison := additive (cmp additive)?
    fn comparison(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Some(Token::Sym("==")) => Some(BinOp::Eq),
            Some(Token::Sym("!=")) => Some(BinOp::Ne),
            Some(Token::Sym("<=")) => Some(BinOp::Le),
            Some(Token::Sym(">=")) => Some(BinOp::Ge),
            Some(Token::Sym("<")) => Some(BinOp::Lt),
            Some(Token::Sym(">")) => Some(BinOp::Gt),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.additive()?;
            Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    /// additive := term (("+" | "-") term)*
    fn additive(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym("+")) => BinOp::Add,
                Some(Token::Sym("-")) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// term := unary (("*" | "&" | "|" | "^" | "<<" | ">>") unary)*
    fn term(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym("*")) => BinOp::Mul,
                Some(Token::Sym("&")) => BinOp::And,
                Some(Token::Sym("|")) => BinOp::Or,
                Some(Token::Sym("^")) => BinOp::Xor,
                Some(Token::Sym("<<")) => BinOp::Shl,
                Some(Token::Sym(">>")) => BinOp::Shr,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        if self.try_sym("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.try_sym("!") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.advance() {
            Some(Token::Num(v)) => Ok(Expr::Num(v)),
            Some(Token::Ident(name)) => Ok(Expr::Var(name)),
            Some(Token::Mem) => {
                self.eat_sym("[")?;
                let addr = self.expr()?;
                self.eat_sym("]")?;
                Ok(Expr::Mem(Box::new(addr)))
            }
            Some(Token::Sym("(")) => {
                let inner = self.expr()?;
                self.eat_sym(")")?;
                Ok(inner)
            }
            other => Err(CompileError::new(
                line,
                format!("expected an expression, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declarations_and_precedence() {
        let stmts = parse("var x = 1 + 2 * 3;").unwrap();
        assert_eq!(
            stmts,
            vec![Stmt::Declare(
                "x".into(),
                Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Num(1)),
                    Box::new(Expr::Bin(
                        BinOp::Mul,
                        Box::new(Expr::Num(2)),
                        Box::new(Expr::Num(3))
                    ))
                )
            )]
        );
    }

    #[test]
    fn parses_control_flow() {
        let stmts = parse("while (x) { x = x - 1; }").unwrap();
        assert!(matches!(&stmts[0], Stmt::While(Expr::Var(_), body) if body.len() == 1));
        let stmts = parse("if (a < b) { mem[1] = a; } else { mem[1] = b; }").unwrap();
        assert!(matches!(&stmts[0], Stmt::If(_, t, e) if t.len() == 1 && e.len() == 1));
    }

    #[test]
    fn parses_memory_access() {
        let stmts = parse("mem[x + 1] = mem[2] << 3;").unwrap();
        assert!(matches!(&stmts[0], Stmt::Store(..)));
    }

    #[test]
    fn parentheses_override_precedence() {
        let stmts = parse("var x = (1 + 2) * 3;").unwrap();
        assert!(matches!(
            &stmts[0],
            Stmt::Declare(_, Expr::Bin(BinOp::Mul, ..))
        ));
    }

    #[test]
    fn error_reports_line() {
        let err = parse("var x = 1;\nvar = 2;").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn rejects_unterminated_block() {
        assert!(parse("while (1) { x = 1;").is_err());
    }
}
