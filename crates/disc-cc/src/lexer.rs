//! Tokenizer for the discc language.

use crate::CompileError;

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Integer literal (decimal or `0x` hexadecimal), already reduced
    /// modulo 2¹⁶.
    Num(u16),
    /// Identifier.
    Ident(String),
    /// Keyword `var`.
    Var,
    /// Keyword `while`.
    While,
    /// Keyword `if`.
    If,
    /// Keyword `else`.
    Else,
    /// Keyword `mem`.
    Mem,
    /// A punctuation or operator symbol (`"+"`, `"<<"`, `"=="`, …).
    Sym(&'static str),
}

pub(crate) struct Lexed {
    pub tokens: Vec<(Token, usize)>,
}

const TWO_CHAR: [&str; 8] = ["==", "!=", "<=", ">=", "<<", ">>", "&&", "||"];
const ONE_CHAR: [&str; 15] = [
    "+", "-", "*", "&", "|", "^", "<", ">", "=", ";", "(", ")", "{", "}", "!",
];

pub(crate) fn lex(source: &str) -> Result<Lexed, CompileError> {
    let mut tokens = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split("//").next().unwrap_or("");
        let mut chars = text.char_indices().peekable();
        while let Some(&(i, c)) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
                continue;
            }
            if c.is_ascii_digit() {
                let mut end = i;
                let mut radix = 10;
                let rest = &text[i..];
                let body_start;
                if rest.starts_with("0x") || rest.starts_with("0X") {
                    radix = 16;
                    body_start = i + 2;
                    chars.next();
                    chars.next();
                } else {
                    body_start = i;
                }
                while let Some(&(j, d)) = chars.peek() {
                    if d.is_ascii_alphanumeric() {
                        end = j;
                        chars.next();
                    } else {
                        break;
                    }
                }
                let body = if end >= body_start {
                    &text[body_start..=end]
                } else {
                    ""
                };
                let value = u32::from_str_radix(if body.is_empty() { "0" } else { body }, radix)
                    .map_err(|_| {
                        CompileError::new(line, format!("invalid number `{}`", &text[i..=end]))
                    })?;
                tokens.push((Token::Num(value as u16), line));
                continue;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let mut end = i;
                while let Some(&(j, d)) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        end = j;
                        chars.next();
                    } else {
                        break;
                    }
                }
                let word = &text[i..=end];
                let tok = match word {
                    "var" => Token::Var,
                    "while" => Token::While,
                    "if" => Token::If,
                    "else" => Token::Else,
                    "mem" => Token::Mem,
                    _ => Token::Ident(word.to_string()),
                };
                tokens.push((tok, line));
                continue;
            }
            if c == '[' || c == ']' {
                chars.next();
                tokens.push((Token::Sym(if c == '[' { "[" } else { "]" }), line));
                continue;
            }
            let rest = &text[i..];
            if let Some(&sym) = TWO_CHAR.iter().find(|s| rest.starts_with(**s)) {
                chars.next();
                chars.next();
                tokens.push((Token::Sym(sym), line));
                continue;
            }
            if let Some(&sym) = ONE_CHAR.iter().find(|s| rest.starts_with(**s)) {
                chars.next();
                tokens.push((Token::Sym(sym), line));
                continue;
            }
            return Err(CompileError::new(
                line,
                format!("unexpected character `{c}`"),
            ));
        }
    }
    Ok(Lexed { tokens })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src)
            .unwrap()
            .tokens
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    }

    #[test]
    fn lexes_statement() {
        assert_eq!(
            toks("var x = 0x10;"),
            vec![
                Token::Var,
                Token::Ident("x".into()),
                Token::Sym("="),
                Token::Num(16),
                Token::Sym(";"),
            ]
        );
    }

    #[test]
    fn two_char_symbols_win() {
        assert_eq!(
            toks("a <= b << 2"),
            vec![
                Token::Ident("a".into()),
                Token::Sym("<="),
                Token::Ident("b".into()),
                Token::Sym("<<"),
                Token::Num(2),
            ]
        );
    }

    #[test]
    fn comments_and_lines_tracked() {
        let lexed = lex("var a = 1; // comment\nvar b = 2;").unwrap();
        assert_eq!(lexed.tokens.len(), 10);
        assert_eq!(lexed.tokens[5].1, 2, "second statement on line 2");
    }

    #[test]
    fn numbers_wrap_to_u16() {
        assert_eq!(toks("70000"), vec![Token::Num(4464)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("var x = @;").is_err());
    }
}
