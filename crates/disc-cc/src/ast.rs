//! Abstract syntax of the discc language.

/// Binary operators, in DISC1-native 16-bit wrapping semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Low 16 bits of the product.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift by `rhs & 15`.
    Shl,
    /// Logical right shift by `rhs & 15`.
    Shr,
    /// `1` if equal else `0`.
    Eq,
    /// `1` if unequal else `0`.
    Ne,
    /// Unsigned `<`.
    Lt,
    /// Unsigned `<=`.
    Le,
    /// Unsigned `>`.
    Gt,
    /// Unsigned `>=`.
    Ge,
}

impl BinOp {
    /// Reference semantics (used by tests and constant folding).
    pub fn eval(self, a: u16, b: u16) -> u16 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a << (b & 15),
            BinOp::Shr => a >> (b & 15),
            BinOp::Eq => (a == b) as u16,
            BinOp::Ne => (a != b) as u16,
            BinOp::Lt => (a < b) as u16,
            BinOp::Le => (a <= b) as u16,
            BinOp::Gt => (a > b) as u16,
            BinOp::Ge => (a >= b) as u16,
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(u16),
    /// Variable reference.
    Var(String),
    /// Internal-memory load `mem[addr]`.
    Mem(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Two's-complement negation.
    Neg(Box<Expr>),
    /// Logical not (`!x` is `1` if `x == 0` else `0`).
    Not(Box<Expr>),
    /// Short-circuit logical and (`1`/`0`).
    AndAnd(Box<Expr>, Box<Expr>),
    /// Short-circuit logical or (`1`/`0`).
    OrOr(Box<Expr>, Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var name = expr;` — declares and initializes.
    Declare(String, Expr),
    /// `name = expr;`
    Assign(String, Expr),
    /// `mem[addr] = expr;`
    Store(Expr, Expr),
    /// `while (cond) { body }`
    While(Expr, Vec<Stmt>),
    /// `if (cond) { then } else { otherwise }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
}

/// Maximum nesting depth of expression evaluation — one visible window's
/// worth of registers.
pub const MAX_EXPR_DEPTH: usize = 8;

/// Register depth needed to evaluate `e` with the Sethi–Ullman-style
/// left-to-right strategy the code generator uses.
pub fn expr_depth(e: &Expr) -> usize {
    match e {
        Expr::Num(_) | Expr::Var(_) => 1,
        Expr::Mem(a) | Expr::Neg(a) | Expr::Not(a) => expr_depth(a),
        Expr::Bin(_, a, b) => expr_depth(a).max(expr_depth(b) + 1),
        // Short-circuit forms evaluate both sides in the same register.
        Expr::AndAnd(a, b) | Expr::OrOr(a, b) => expr_depth(a).max(expr_depth(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_reference_semantics() {
        assert_eq!(BinOp::Add.eval(0xffff, 2), 1);
        assert_eq!(BinOp::Sub.eval(0, 1), 0xffff);
        assert_eq!(BinOp::Mul.eval(300, 300), (90_000u32 % 65_536) as u16);
        assert_eq!(BinOp::Shl.eval(1, 17), 2, "shift amount masked");
        assert_eq!(BinOp::Lt.eval(3, 4), 1);
        assert_eq!(BinOp::Ge.eval(3, 4), 0);
    }

    #[test]
    fn depth_counts_right_operands() {
        // x + 1 needs 2 registers; x needs 1.
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Var("x".into())),
            Box::new(Expr::Num(1)),
        );
        assert_eq!(expr_depth(&e), 2);
        // ((a+b)+(c+d)) needs 3.
        let pair = |l: &str, r: &str| {
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Var(l.into())),
                Box::new(Expr::Var(r.into())),
            )
        };
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(pair("a", "b")),
            Box::new(pair("c", "d")),
        );
        assert_eq!(expr_depth(&e), 3);
    }
}
