//! Two-pass assembler for the DISC1 instruction set.
//!
//! # Syntax
//!
//! One statement per line; `;` starts a comment. A statement is an optional
//! `label:` prefix followed by a directive or an instruction.
//!
//! ```text
//!     .equ    SENSOR, 0x8000       ; named constant
//!     .org    0x0100               ; set location counter
//!     .stream 0, main              ; stream 0 starts at `main`
//!     .vector 1, 3, isr            ; stream 1, IR bit 3 vectors to `isr`
//!     .word   0xabcdef             ; raw 24-bit program word
//! main:
//!     ldi  r0, 10
//!     ld   r1, [g0 + 2]            ; register + offset addressing
//!     add  r2, r1, r0, +w          ; trailing `, +w` / `, -w` adjusts AWP
//!     call helper
//!     jnz  main
//!     halt
//! helper:
//!     ret  0
//! ```
//!
//! Numeric literals accept decimal, `0x` hexadecimal and `0b` binary, with
//! an optional leading `-`. Jump, call and fork targets, `ldi`, `lda`/`sta`
//! addresses and `.word` values may reference labels or `.equ` constants.
//!
//! Pseudo-instructions: `li rd, imm16` (expands to `ldi` + `lui`),
//! `inc rd`, `dec rd`, `clr rd`.

use std::collections::HashMap;
use std::fmt;

use crate::encode::encode;
use crate::instr::{AluImmOp, AluOp, AwpMode, Cond, Instruction};
use crate::program::Program;
use crate::reg::Reg;

/// Error raised while assembling source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        AsmError {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assembles DISC1 source text into a [`Program`].
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on syntax errors, unknown
/// mnemonics or registers, duplicate or undefined labels, and operands out
/// of encodable range.
///
/// # Example
///
/// ```
/// let p = disc_isa::asm::assemble(".stream 0, go\ngo: halt\n")?;
/// assert_eq!(p.entry(0), Some(0));
/// # Ok::<(), disc_isa::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let statements = parse_lines(source)?;
    let symbols = collect_symbols(&statements)?;
    emit(&statements, &symbols)
}

#[derive(Debug, Clone)]
enum Stmt {
    Label(String),
    Org(Expr),
    Equ(String, Expr),
    Word(Expr),
    Stream(Expr, Expr),
    Vector(Expr, Expr, Expr),
    Instr {
        mnemonic: String,
        operands: Vec<String>,
    },
}

#[derive(Debug, Clone)]
struct Line {
    number: usize,
    stmt: Stmt,
}

/// An operand expression: either a literal or a symbol reference.
#[derive(Debug, Clone)]
enum Expr {
    Literal(i64),
    Symbol(String),
}

impl Expr {
    fn parse(text: &str, line: usize) -> Result<Expr, AsmError> {
        let t = text.trim();
        if t.is_empty() {
            return Err(AsmError::new(line, "empty operand"));
        }
        if let Some(v) = parse_int(t) {
            return Ok(Expr::Literal(v));
        }
        if is_identifier(t) {
            return Ok(Expr::Symbol(t.to_string()));
        }
        Err(AsmError::new(line, format!("cannot parse operand `{t}`")))
    }

    fn eval(&self, symbols: &HashMap<String, i64>, line: usize) -> Result<i64, AsmError> {
        match self {
            Expr::Literal(v) => Ok(*v),
            Expr::Symbol(name) => symbols
                .get(name)
                .copied()
                .ok_or_else(|| AsmError::new(line, format!("undefined symbol `{name}`"))),
        }
    }
}

fn parse_int(t: &str) -> Option<i64> {
    let (neg, body) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        i64::from_str_radix(bin, 2).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn is_identifier(t: &str) -> bool {
    let mut chars = t.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_lines(source: &str) -> Result<Vec<Line>, AsmError> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let mut text = raw;
        if let Some(pos) = text.find(';') {
            text = &text[..pos];
        }
        let mut text = text.trim();
        // Labels (possibly several) at the start of the line.
        while let Some(pos) = text.find(':') {
            let (head, tail) = text.split_at(pos);
            let label = head.trim();
            if !is_identifier(label) {
                return Err(AsmError::new(number, format!("invalid label `{label}`")));
            }
            out.push(Line {
                number,
                stmt: Stmt::Label(label.to_string()),
            });
            text = tail[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (head, rest) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], text[pos..].trim()),
            None => (text, ""),
        };
        let head_lower = head.to_ascii_lowercase();
        let stmt = if let Some(directive) = head_lower.strip_prefix('.') {
            let args: Vec<&str> = split_operands(rest);
            match directive {
                "org" => {
                    expect_args(number, directive, &args, 1)?;
                    Stmt::Org(Expr::parse(args[0], number)?)
                }
                "equ" => {
                    expect_args(number, directive, &args, 2)?;
                    let name = args[0].trim();
                    if !is_identifier(name) {
                        return Err(AsmError::new(
                            number,
                            format!("invalid constant name `{name}`"),
                        ));
                    }
                    Stmt::Equ(name.to_string(), Expr::parse(args[1], number)?)
                }
                "word" => {
                    expect_args(number, directive, &args, 1)?;
                    Stmt::Word(Expr::parse(args[0], number)?)
                }
                "stream" => {
                    expect_args(number, directive, &args, 2)?;
                    Stmt::Stream(Expr::parse(args[0], number)?, Expr::parse(args[1], number)?)
                }
                "vector" => {
                    expect_args(number, directive, &args, 3)?;
                    Stmt::Vector(
                        Expr::parse(args[0], number)?,
                        Expr::parse(args[1], number)?,
                        Expr::parse(args[2], number)?,
                    )
                }
                other => {
                    return Err(AsmError::new(
                        number,
                        format!("unknown directive `.{other}`"),
                    ))
                }
            }
        } else {
            Stmt::Instr {
                mnemonic: head_lower,
                operands: split_operands(rest)
                    .into_iter()
                    .map(str::to_string)
                    .collect(),
            }
        };
        out.push(Line { number, stmt });
    }
    Ok(out)
}

fn expect_args(line: usize, what: &str, args: &[&str], n: usize) -> Result<(), AsmError> {
    if args.len() != n {
        return Err(AsmError::new(
            line,
            format!(".{what} expects {n} operand(s), got {}", args.len()),
        ));
    }
    Ok(())
}

/// Splits an operand list on top-level commas (commas inside `[...]` belong
/// to the memory operand).
fn split_operands(text: &str) -> Vec<&str> {
    let text = text.trim();
    if text.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(text[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(text[start..].trim());
    out
}

/// Pass 1: assign addresses to labels, collect `.equ` constants.
fn collect_symbols(lines: &[Line]) -> Result<HashMap<String, i64>, AsmError> {
    let mut symbols: HashMap<String, i64> = HashMap::new();
    let mut pc: i64 = 0;
    for line in lines {
        match &line.stmt {
            Stmt::Label(name) => {
                if symbols.insert(name.clone(), pc).is_some() {
                    return Err(AsmError::new(
                        line.number,
                        format!("duplicate symbol `{name}`"),
                    ));
                }
            }
            Stmt::Equ(name, expr) => {
                // `.equ` may only reference already-defined symbols so that
                // pass 1 can evaluate it immediately.
                let value = expr.eval(&symbols, line.number)?;
                if symbols.insert(name.clone(), value).is_some() {
                    return Err(AsmError::new(
                        line.number,
                        format!("duplicate symbol `{name}`"),
                    ));
                }
            }
            Stmt::Org(expr) => {
                pc = expr.eval(&symbols, line.number)?;
                if !(0..=0xffff).contains(&pc) {
                    return Err(AsmError::new(line.number, ".org address out of range"));
                }
            }
            Stmt::Word(_) => pc += 1,
            Stmt::Instr { mnemonic, .. } => pc += statement_words(mnemonic) as i64,
            Stmt::Stream(..) | Stmt::Vector(..) => {}
        }
        if pc > 0x1_0000 {
            return Err(AsmError::new(line.number, "program exceeds 64K words"));
        }
    }
    Ok(symbols)
}

/// Pass 2: encode instructions and apply directives.
fn emit(lines: &[Line], symbols: &HashMap<String, i64>) -> Result<Program, AsmError> {
    let mut program = Program::new();
    for (name, value) in symbols {
        if (0..=0xffff).contains(value) {
            program.define_symbol(name.clone(), *value as u16);
        }
    }
    let mut pc: u32 = 0;
    for line in lines {
        let n = line.number;
        match &line.stmt {
            Stmt::Label(_) | Stmt::Equ(..) => {}
            Stmt::Org(expr) => pc = expr.eval(symbols, n)? as u32,
            Stmt::Word(expr) => {
                let v = expr.eval(symbols, n)?;
                if !(0..=crate::INSTR_MASK as i64).contains(&v) {
                    return Err(AsmError::new(n, ".word value out of 24-bit range"));
                }
                program.set_word(pc as u16, v as u32);
                pc += 1;
            }
            Stmt::Stream(s, target) => {
                let s = eval_range(s, symbols, n, 0, crate::MAX_STREAMS as i64 - 1, "stream")?;
                let t = eval_range(target, symbols, n, 0, 0xffff, "entry address")?;
                program.set_entry(s as usize, t as u16);
            }
            Stmt::Vector(s, bit, target) => {
                let s = eval_range(s, symbols, n, 0, crate::MAX_STREAMS as i64 - 1, "stream")?;
                let b = eval_range(bit, symbols, n, 1, 7, "vector bit")?;
                let t = eval_range(target, symbols, n, 0, 0xffff, "vector address")?;
                program.set_vector(s as usize, b as u8, t as u16);
            }
            Stmt::Instr { mnemonic, operands } => {
                for instr in encode_statement(mnemonic, operands, symbols, n)? {
                    program.set_word(pc as u16, encode(&instr));
                    pc += 1;
                }
            }
        }
        if pc > 0x1_0000 {
            return Err(AsmError::new(n, "program exceeds 64K words"));
        }
    }
    Ok(program)
}

fn eval_range(
    expr: &Expr,
    symbols: &HashMap<String, i64>,
    line: usize,
    lo: i64,
    hi: i64,
    what: &str,
) -> Result<i64, AsmError> {
    let v = expr.eval(symbols, line)?;
    if !(lo..=hi).contains(&v) {
        return Err(AsmError::new(
            line,
            format!("{what} {v} out of range {lo}..={hi}"),
        ));
    }
    Ok(v)
}

struct Operands<'a> {
    line: usize,
    mnemonic: &'a str,
    items: Vec<&'a str>,
    awp: AwpMode,
}

impl<'a> Operands<'a> {
    fn new(mnemonic: &'a str, operands: &'a [String], line: usize) -> Self {
        let mut items: Vec<&str> = operands.iter().map(|s| s.as_str()).collect();
        let mut awp = AwpMode::None;
        if let Some(last) = items.last() {
            match last.to_ascii_lowercase().as_str() {
                "+w" => {
                    awp = AwpMode::Inc;
                    items.pop();
                }
                "-w" => {
                    awp = AwpMode::Dec;
                    items.pop();
                }
                _ => {}
            }
        }
        Operands {
            line,
            mnemonic,
            items,
            awp,
        }
    }

    fn expect(&self, n: usize) -> Result<(), AsmError> {
        if self.items.len() != n {
            return Err(AsmError::new(
                self.line,
                format!(
                    "`{}` expects {n} operand(s), got {}",
                    self.mnemonic,
                    self.items.len()
                ),
            ));
        }
        Ok(())
    }

    fn no_awp(&self) -> Result<(), AsmError> {
        if self.awp != AwpMode::None {
            return Err(AsmError::new(
                self.line,
                format!("`{}` does not accept a window adjust suffix", self.mnemonic),
            ));
        }
        Ok(())
    }

    fn reg(&self, i: usize) -> Result<Reg, AsmError> {
        self.items[i]
            .parse::<Reg>()
            .map_err(|e| AsmError::new(self.line, e.to_string()))
    }

    fn imm(
        &self,
        i: usize,
        symbols: &HashMap<String, i64>,
        lo: i64,
        hi: i64,
        what: &str,
    ) -> Result<i64, AsmError> {
        let expr = Expr::parse(self.items[i], self.line)?;
        eval_range(&expr, symbols, self.line, lo, hi, what)
    }

    /// Parses a `[base]`, `[base + off]` or `[base - off]` memory operand.
    fn mem(&self, i: usize, symbols: &HashMap<String, i64>) -> Result<(Reg, i8), AsmError> {
        let text = self.items[i].trim();
        let inner = text
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or_else(|| {
                AsmError::new(
                    self.line,
                    format!("expected memory operand `[reg +/- off]`, got `{text}`"),
                )
            })?
            .trim();
        let (base_text, off) = if let Some(pos) = inner.find(['+', '-']) {
            let (b, rest) = inner.split_at(pos);
            let sign = if rest.starts_with('-') { -1 } else { 1 };
            let off_expr = Expr::parse(rest[1..].trim(), self.line)?;
            let off = off_expr.eval(symbols, self.line)? * sign;
            (b.trim(), off)
        } else {
            (inner, 0)
        };
        let base = base_text
            .parse::<Reg>()
            .map_err(|e| AsmError::new(self.line, e.to_string()))?;
        if !(-128..=127).contains(&off) {
            return Err(AsmError::new(
                self.line,
                format!("memory offset {off} out of 8-bit signed range"),
            ));
        }
        Ok((base, off as i8))
    }
}

/// Number of program words a statement assembles to (pseudo-instructions
/// may expand to several).
fn statement_words(mnemonic: &str) -> usize {
    match mnemonic {
        "li" => 2,
        _ => 1,
    }
}

/// Expands pseudo-instructions, or returns `None` for real mnemonics.
///
/// Supported pseudo-instructions:
///
/// * `li rd, imm16` — load a full 16-bit constant (`ldi` + `lui`);
/// * `inc rd` / `dec rd` — add/subtract one;
/// * `clr rd` — zero a register.
fn encode_pseudo(
    mnemonic: &str,
    ops: &Operands<'_>,
    symbols: &HashMap<String, i64>,
) -> Result<Option<Vec<Instruction>>, AsmError> {
    let out = match mnemonic {
        "li" => {
            ops.no_awp()?;
            ops.expect(2)?;
            let rd = ops.reg(0)?;
            let imm = ops.imm(1, symbols, -32768, 65535, "immediate")? as u16;
            vec![
                Instruction::Ldi {
                    awp: AwpMode::None,
                    rd,
                    imm: (imm & 0xff) as i16,
                },
                Instruction::Lui {
                    rd,
                    imm: (imm >> 8) as u8,
                },
            ]
        }
        "inc" | "dec" => {
            ops.expect(1)?;
            let rd = ops.reg(0)?;
            vec![Instruction::AluImm {
                op: if mnemonic == "inc" {
                    AluImmOp::Addi
                } else {
                    AluImmOp::Subi
                },
                awp: ops.awp,
                rd,
                rs: rd,
                imm: 1,
            }]
        }
        "clr" => {
            ops.expect(1)?;
            vec![Instruction::Ldi {
                awp: ops.awp,
                rd: ops.reg(0)?,
                imm: 0,
            }]
        }
        _ => return Ok(None),
    };
    Ok(Some(out))
}

fn encode_statement(
    mnemonic: &str,
    operands: &[String],
    symbols: &HashMap<String, i64>,
    line: usize,
) -> Result<Vec<Instruction>, AsmError> {
    let ops = Operands::new(mnemonic, operands, line);
    if let Some(expansion) = encode_pseudo(mnemonic, &ops, symbols)? {
        return Ok(expansion);
    }
    encode_real(mnemonic, ops, symbols, line).map(|i| vec![i])
}

fn encode_real(
    mnemonic: &str,
    ops: Operands<'_>,
    symbols: &HashMap<String, i64>,
    line: usize,
) -> Result<Instruction, AsmError> {
    // R-format ALU.
    if let Some(op) = AluOp::ALL
        .iter()
        .copied()
        .find(|o| o.mnemonic() == mnemonic)
    {
        return match op {
            AluOp::Mov | AluOp::Not => {
                ops.expect(2)?;
                Ok(Instruction::Alu {
                    op,
                    awp: ops.awp,
                    rd: ops.reg(0)?,
                    rs: ops.reg(1)?,
                    rt: Reg::R0,
                })
            }
            AluOp::Cmp => {
                ops.expect(2)?;
                Ok(Instruction::Alu {
                    op,
                    awp: ops.awp,
                    rd: Reg::R0,
                    rs: ops.reg(0)?,
                    rt: ops.reg(1)?,
                })
            }
            _ => {
                ops.expect(3)?;
                Ok(Instruction::Alu {
                    op,
                    awp: ops.awp,
                    rd: ops.reg(0)?,
                    rs: ops.reg(1)?,
                    rt: ops.reg(2)?,
                })
            }
        };
    }
    // I-format ALU.
    if let Some(op) = AluImmOp::ALL
        .iter()
        .copied()
        .find(|o| o.mnemonic() == mnemonic)
    {
        return if op.writes_rd() {
            ops.expect(3)?;
            Ok(Instruction::AluImm {
                op,
                awp: ops.awp,
                rd: ops.reg(0)?,
                rs: ops.reg(1)?,
                imm: ops.imm(2, symbols, 0, 255, "immediate")? as u8,
            })
        } else {
            ops.expect(2)?;
            Ok(Instruction::AluImm {
                op,
                awp: ops.awp,
                rd: Reg::R0,
                rs: ops.reg(0)?,
                imm: ops.imm(1, symbols, 0, 255, "immediate")? as u8,
            })
        };
    }
    // Jumps.
    if let Some(cond) = Cond::ALL.iter().copied().find(|c| c.mnemonic() == mnemonic) {
        ops.no_awp()?;
        ops.expect(1)?;
        return Ok(Instruction::Jmp {
            cond,
            target: ops.imm(0, symbols, 0, 0xffff, "jump target")? as u16,
        });
    }
    match mnemonic {
        "nop" => {
            ops.no_awp()?;
            ops.expect(0)?;
            Ok(Instruction::Nop)
        }
        "ldi" => {
            ops.expect(2)?;
            Ok(Instruction::Ldi {
                awp: ops.awp,
                rd: ops.reg(0)?,
                imm: ops.imm(1, symbols, -2048, 2047, "immediate")? as i16,
            })
        }
        "lui" => {
            ops.no_awp()?;
            ops.expect(2)?;
            Ok(Instruction::Lui {
                rd: ops.reg(0)?,
                imm: ops.imm(1, symbols, 0, 255, "immediate")? as u8,
            })
        }
        "ld" => {
            ops.expect(2)?;
            let (base, offset) = ops.mem(1, symbols)?;
            Ok(Instruction::Ld {
                awp: ops.awp,
                rd: ops.reg(0)?,
                base,
                offset,
            })
        }
        "st" => {
            ops.expect(2)?;
            let (base, offset) = ops.mem(1, symbols)?;
            Ok(Instruction::St {
                awp: ops.awp,
                src: ops.reg(0)?,
                base,
                offset,
            })
        }
        "lda" => {
            ops.expect(2)?;
            Ok(Instruction::Lda {
                awp: ops.awp,
                rd: ops.reg(0)?,
                addr: ops.imm(1, symbols, 0, 0x0fff, "direct address")? as u16,
            })
        }
        "sta" => {
            ops.expect(2)?;
            Ok(Instruction::Sta {
                awp: ops.awp,
                src: ops.reg(0)?,
                addr: ops.imm(1, symbols, 0, 0x0fff, "direct address")? as u16,
            })
        }
        "tset" => {
            ops.no_awp()?;
            ops.expect(2)?;
            let (base, offset) = ops.mem(1, symbols)?;
            Ok(Instruction::Tset {
                rd: ops.reg(0)?,
                base,
                offset,
            })
        }
        "call" => {
            ops.no_awp()?;
            ops.expect(1)?;
            Ok(Instruction::Call {
                target: ops.imm(0, symbols, 0, 0xffff, "call target")? as u16,
            })
        }
        "ret" => {
            ops.no_awp()?;
            let pop = match ops.items.len() {
                0 => 0,
                1 => ops.imm(0, symbols, 0, 255, "pop count")? as u8,
                _ => return Err(AsmError::new(line, "`ret` expects at most one operand")),
            };
            Ok(Instruction::Ret { pop })
        }
        "reti" => {
            ops.no_awp()?;
            ops.expect(0)?;
            Ok(Instruction::Reti)
        }
        "winc" => {
            ops.no_awp()?;
            ops.expect(1)?;
            Ok(Instruction::Winc {
                n: ops.imm(0, symbols, 0, 255, "window count")? as u8,
            })
        }
        "wdec" => {
            ops.no_awp()?;
            ops.expect(1)?;
            Ok(Instruction::Wdec {
                n: ops.imm(0, symbols, 0, 255, "window count")? as u8,
            })
        }
        "fork" => {
            ops.no_awp()?;
            ops.expect(2)?;
            Ok(Instruction::Fork {
                stream: ops.imm(0, symbols, 0, 7, "stream")? as u8,
                target: ops.imm(1, symbols, 0, 0x0fff, "fork target")? as u16,
            })
        }
        "signal" => {
            ops.no_awp()?;
            ops.expect(2)?;
            Ok(Instruction::Signal {
                stream: ops.imm(0, symbols, 0, 7, "stream")? as u8,
                bit: ops.imm(1, symbols, 0, 7, "interrupt bit")? as u8,
            })
        }
        "clri" => {
            ops.no_awp()?;
            ops.expect(1)?;
            Ok(Instruction::Clri {
                bit: ops.imm(0, symbols, 0, 7, "interrupt bit")? as u8,
            })
        }
        "stop" => {
            ops.no_awp()?;
            ops.expect(0)?;
            Ok(Instruction::Stop)
        }
        "halt" => {
            ops.no_awp()?;
            ops.expect(0)?;
            Ok(Instruction::Halt)
        }
        "brk" => {
            ops.no_awp()?;
            ops.expect(0)?;
            Ok(Instruction::Brk)
        }
        other => Err(AsmError::new(line, format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode;

    fn one(src: &str) -> Instruction {
        let p = assemble(src).unwrap();
        decode(p.word(0)).unwrap()
    }

    #[test]
    fn assembles_alu_forms() {
        assert_eq!(
            one("add r0, r1, g2"),
            Instruction::Alu {
                op: AluOp::Add,
                awp: AwpMode::None,
                rd: Reg::R0,
                rs: Reg::R1,
                rt: Reg::G2,
            }
        );
        assert_eq!(
            one("mov g0, r3, +w"),
            Instruction::Alu {
                op: AluOp::Mov,
                awp: AwpMode::Inc,
                rd: Reg::G0,
                rs: Reg::R3,
                rt: Reg::R0,
            }
        );
        assert_eq!(
            one("cmp r1, r2"),
            Instruction::Alu {
                op: AluOp::Cmp,
                awp: AwpMode::None,
                rd: Reg::R0,
                rs: Reg::R1,
                rt: Reg::R2,
            }
        );
    }

    #[test]
    fn assembles_memory_forms() {
        assert_eq!(
            one("ld r1, [g0 + 4]"),
            Instruction::Ld {
                awp: AwpMode::None,
                rd: Reg::R1,
                base: Reg::G0,
                offset: 4,
            }
        );
        assert_eq!(
            one("st r2, [sp - 3], -w"),
            Instruction::St {
                awp: AwpMode::Dec,
                src: Reg::R2,
                base: Reg::Sp,
                offset: -3,
            }
        );
        assert_eq!(
            one("ld r0, [r7]"),
            Instruction::Ld {
                awp: AwpMode::None,
                rd: Reg::R0,
                base: Reg::R7,
                offset: 0,
            }
        );
        assert_eq!(
            one("tset r0, [g1 + 1]"),
            Instruction::Tset {
                rd: Reg::R0,
                base: Reg::G1,
                offset: 1,
            }
        );
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = assemble("start: nop\n jmp end\n jmp start\nend: halt\n").unwrap();
        assert_eq!(
            decode(p.word(1)).unwrap(),
            Instruction::Jmp {
                cond: Cond::Always,
                target: 3
            }
        );
        assert_eq!(
            decode(p.word(2)).unwrap(),
            Instruction::Jmp {
                cond: Cond::Always,
                target: 0
            }
        );
    }

    #[test]
    fn org_and_word_directives() {
        let p = assemble(".org 0x20\n.word 0x123456\nnop\n").unwrap();
        assert_eq!(p.word(0x20), 0x123456);
        assert_eq!(decode(p.word(0x21)).unwrap(), Instruction::Nop);
    }

    #[test]
    fn equ_constants() {
        let p = assemble(".equ PORT, 0x80\nldi r0, PORT\n").unwrap();
        assert_eq!(
            decode(p.word(0)).unwrap(),
            Instruction::Ldi {
                awp: AwpMode::None,
                rd: Reg::R0,
                imm: 0x80
            }
        );
    }

    #[test]
    fn stream_and_vector_directives() {
        let p = assemble(".stream 2, entry\n.vector 1, 3, isr\nentry: nop\nisr: reti\n").unwrap();
        assert_eq!(p.entry(2), Some(0));
        assert_eq!(p.vector(1, 3), Some(1));
        assert_eq!(p.entry(0), None);
        assert_eq!(p.vector(1, 4), None);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbogus r1\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.message().contains("bogus"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("a: nop\na: nop\n").unwrap_err();
        assert!(err.message().contains("duplicate"));
    }

    #[test]
    fn undefined_symbol_rejected() {
        let err = assemble("jmp nowhere\n").unwrap_err();
        assert!(err.message().contains("undefined symbol"));
    }

    #[test]
    fn out_of_range_operands_rejected() {
        assert!(assemble("ldi r0, 5000\n").is_err());
        assert!(assemble("fork 9, 0\n").is_err());
        assert!(assemble("signal 0, 8\n").is_err());
        assert!(assemble("ld r0, [g0 + 200]\n").is_err());
        assert!(assemble("addi r0, r0, 256\n").is_err());
    }

    #[test]
    fn awp_suffix_rejected_where_meaningless() {
        assert!(assemble("jmp 0, +w\n").is_err());
        assert!(assemble("halt, +w\n").is_err());
        assert!(assemble("call 0, -w\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("; leading comment\n\n nop ; trailing\n").unwrap();
        assert_eq!(decode(p.word(0)).unwrap(), Instruction::Nop);
    }

    #[test]
    fn ret_defaults_to_zero_pop() {
        assert_eq!(one("ret"), Instruction::Ret { pop: 0 });
        assert_eq!(one("ret 3"), Instruction::Ret { pop: 3 });
    }

    #[test]
    fn li_pseudo_expands_to_two_words() {
        let p = assemble("li r3, 0x1234\nhalt\n").unwrap();
        assert_eq!(
            decode(p.word(0)).unwrap(),
            Instruction::Ldi {
                awp: AwpMode::None,
                rd: Reg::R3,
                imm: 0x34
            }
        );
        assert_eq!(
            decode(p.word(1)).unwrap(),
            Instruction::Lui {
                rd: Reg::R3,
                imm: 0x12
            }
        );
        assert_eq!(decode(p.word(2)).unwrap(), Instruction::Halt);
    }

    #[test]
    fn li_keeps_labels_correct() {
        // The 2-word expansion must shift later label addresses.
        let p = assemble("li r0, 0xbeef\ntarget: halt\njmp target\n").unwrap();
        assert_eq!(
            decode(p.word(3)).unwrap(),
            Instruction::Jmp {
                cond: Cond::Always,
                target: 2
            }
        );
    }

    #[test]
    fn inc_dec_clr_pseudos() {
        assert_eq!(
            one("inc g1"),
            Instruction::AluImm {
                op: AluImmOp::Addi,
                awp: AwpMode::None,
                rd: Reg::G1,
                rs: Reg::G1,
                imm: 1
            }
        );
        assert_eq!(
            one("dec r5, +w"),
            Instruction::AluImm {
                op: AluImmOp::Subi,
                awp: AwpMode::Inc,
                rd: Reg::R5,
                rs: Reg::R5,
                imm: 1
            }
        );
        assert_eq!(
            one("clr r2"),
            Instruction::Ldi {
                awp: AwpMode::None,
                rd: Reg::R2,
                imm: 0
            }
        );
    }

    #[test]
    fn li_rejects_out_of_range() {
        assert!(assemble("li r0, 70000\n").is_err());
        assert!(assemble("li r0, 0xffff\n").is_ok());
        assert!(assemble("li r0, -1\n").is_ok());
    }

    #[test]
    fn case_insensitive_mnemonics_and_registers() {
        assert_eq!(
            one("ADD R0, G1, SP"),
            Instruction::Alu {
                op: AluOp::Add,
                awp: AwpMode::None,
                rd: Reg::R0,
                rs: Reg::G1,
                rt: Reg::Sp,
            }
        );
    }
}
