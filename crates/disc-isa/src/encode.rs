//! Binary encoding of DISC1 instructions into 24-bit program words.
//!
//! Word layout (bit 23 is the most significant valid bit):
//!
//! ```text
//! [23:18] opcode
//! [17:16] AWP adjust field (0 none, 1 inc, 2 dec) where applicable
//! [15:12] rd / stream
//! [11:8]  rs / bit
//! [7:4]   rt
//! [7:0]   imm8 / offset8 / pop / n
//! [11:0]  imm12 / addr12 / fork target
//! [15:0]  jump & call target
//! ```
//!
//! The all-zero word encodes `nop`, so uninitialized program memory executes
//! harmlessly.

use std::fmt;

use crate::instr::{AluImmOp, AluOp, AwpMode, Cond, Instruction};
use crate::reg::Reg;
use crate::INSTR_MASK;

// Opcode assignments. R-format ALU ops occupy 1..=15, immediate ALU ops
// 16..=21, memory ops 24..=28, jumps 32..=39 (32 + condition code).
const OP_NOP: u32 = 0;
const OP_ALU_BASE: u32 = 1; // ..=15
const OP_ALUI_BASE: u32 = 16; // ..=21
const OP_LDI: u32 = 22;
const OP_LUI: u32 = 23;
const OP_LD: u32 = 24;
const OP_ST: u32 = 25;
const OP_LDA: u32 = 26;
const OP_STA: u32 = 27;
const OP_TSET: u32 = 28;
const OP_JMP_BASE: u32 = 32; // ..=39
const OP_CALL: u32 = 40;
const OP_RET: u32 = 41;
const OP_RETI: u32 = 42;
const OP_WINC: u32 = 43;
const OP_WDEC: u32 = 44;
const OP_FORK: u32 = 45;
const OP_SIGNAL: u32 = 46;
const OP_CLRI: u32 = 47;
const OP_STOP: u32 = 48;
const OP_HALT: u32 = 50;
const OP_BRK: u32 = 51;

/// Error produced when decoding an invalid 24-bit program word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    word: u32,
}

impl DecodeError {
    /// The offending program word.
    pub fn word(&self) -> u32 {
        self.word
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#08x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn field(word: u32, lo: u32, bits: u32) -> u32 {
    (word >> lo) & ((1 << bits) - 1)
}

#[inline]
fn reg_field(word: u32, lo: u32) -> Reg {
    // A 4-bit field always decodes to a valid register.
    Reg::from_index(field(word, lo, 4) as u8).expect("4-bit register field")
}

fn awp_field(word: u32) -> Result<AwpMode, DecodeError> {
    AwpMode::from_code(field(word, 16, 2)).ok_or(DecodeError { word })
}

/// Encodes an instruction into its 24-bit program word.
///
/// The result always fits in [`crate::INSTR_MASK`].
///
/// # Panics
///
/// Panics if an operand is out of its encodable range (`Ldi` immediate
/// outside `-2048..=2047`, direct address or fork target above `0x0fff`,
/// stream index above 7, interrupt bit above 7). The assembler and builder
/// validate operands before calling this.
///
/// # Example
///
/// ```
/// use disc_isa::{encode, Instruction};
///
/// let w = encode::encode(&Instruction::Halt);
/// assert_eq!(encode::decode(w)?, Instruction::Halt);
/// # Ok::<(), disc_isa::DecodeError>(())
/// ```
pub fn encode(instr: &Instruction) -> u32 {
    let word = match *instr {
        Instruction::Nop => OP_NOP << 18,
        Instruction::Alu {
            op,
            awp,
            rd,
            rs,
            rt,
        } => {
            let idx = AluOp::ALL.iter().position(|o| *o == op).unwrap() as u32;
            ((OP_ALU_BASE + idx) << 18)
                | (awp.code() << 16)
                | ((rd.index() as u32) << 12)
                | ((rs.index() as u32) << 8)
                | ((rt.index() as u32) << 4)
        }
        Instruction::AluImm {
            op,
            awp,
            rd,
            rs,
            imm,
        } => {
            let idx = AluImmOp::ALL.iter().position(|o| *o == op).unwrap() as u32;
            ((OP_ALUI_BASE + idx) << 18)
                | (awp.code() << 16)
                | ((rd.index() as u32) << 12)
                | ((rs.index() as u32) << 8)
                | imm as u32
        }
        Instruction::Ldi { awp, rd, imm } => {
            assert!(
                (-2048..=2047).contains(&imm),
                "ldi immediate {imm} out of 12-bit range"
            );
            (OP_LDI << 18)
                | (awp.code() << 16)
                | ((rd.index() as u32) << 12)
                | (imm as u32 & 0x0fff)
        }
        Instruction::Lui { rd, imm } => (OP_LUI << 18) | ((rd.index() as u32) << 12) | imm as u32,
        Instruction::Ld {
            awp,
            rd,
            base,
            offset,
        } => {
            (OP_LD << 18)
                | (awp.code() << 16)
                | ((rd.index() as u32) << 12)
                | ((base.index() as u32) << 8)
                | (offset as u8 as u32)
        }
        Instruction::St {
            awp,
            src,
            base,
            offset,
        } => {
            (OP_ST << 18)
                | (awp.code() << 16)
                | ((src.index() as u32) << 12)
                | ((base.index() as u32) << 8)
                | (offset as u8 as u32)
        }
        Instruction::Lda { awp, rd, addr } => {
            assert!(addr <= 0x0fff, "lda address {addr:#x} out of 12-bit range");
            (OP_LDA << 18) | (awp.code() << 16) | ((rd.index() as u32) << 12) | addr as u32
        }
        Instruction::Sta { awp, src, addr } => {
            assert!(addr <= 0x0fff, "sta address {addr:#x} out of 12-bit range");
            (OP_STA << 18) | (awp.code() << 16) | ((src.index() as u32) << 12) | addr as u32
        }
        Instruction::Tset { rd, base, offset } => {
            (OP_TSET << 18)
                | ((rd.index() as u32) << 12)
                | ((base.index() as u32) << 8)
                | (offset as u8 as u32)
        }
        Instruction::Jmp { cond, target } => ((OP_JMP_BASE + cond.code()) << 18) | target as u32,
        Instruction::Call { target } => (OP_CALL << 18) | target as u32,
        Instruction::Ret { pop } => (OP_RET << 18) | pop as u32,
        Instruction::Reti => OP_RETI << 18,
        Instruction::Winc { n } => (OP_WINC << 18) | n as u32,
        Instruction::Wdec { n } => (OP_WDEC << 18) | n as u32,
        Instruction::Fork { stream, target } => {
            assert!(stream < 8, "fork stream {stream} out of range");
            assert!(
                target <= 0x0fff,
                "fork target {target:#x} out of 12-bit range"
            );
            (OP_FORK << 18) | ((stream as u32) << 12) | target as u32
        }
        Instruction::Signal { stream, bit } => {
            assert!(stream < 8, "signal stream {stream} out of range");
            assert!(bit < 8, "signal bit {bit} out of range");
            (OP_SIGNAL << 18) | ((stream as u32) << 12) | ((bit as u32) << 8)
        }
        Instruction::Clri { bit } => {
            assert!(bit < 8, "clri bit {bit} out of range");
            (OP_CLRI << 18) | ((bit as u32) << 8)
        }
        Instruction::Stop => OP_STOP << 18,
        Instruction::Halt => OP_HALT << 18,
        Instruction::Brk => OP_BRK << 18,
    };
    debug_assert_eq!(word & !INSTR_MASK, 0);
    word
}

/// Decodes a 24-bit program word.
///
/// # Errors
///
/// Returns [`DecodeError`] when the opcode field is unassigned, the AWP
/// field holds the invalid code `3`, or bits above bit 23 are set.
pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
    if word & !INSTR_MASK != 0 {
        return Err(DecodeError { word });
    }
    let op = field(word, 18, 6);
    let instr = match op {
        OP_NOP => Instruction::Nop,
        o if (OP_ALU_BASE..OP_ALU_BASE + 15).contains(&o) => Instruction::Alu {
            op: AluOp::ALL[(o - OP_ALU_BASE) as usize],
            awp: awp_field(word)?,
            rd: reg_field(word, 12),
            rs: reg_field(word, 8),
            rt: reg_field(word, 4),
        },
        o if (OP_ALUI_BASE..OP_ALUI_BASE + 6).contains(&o) => Instruction::AluImm {
            op: AluImmOp::ALL[(o - OP_ALUI_BASE) as usize],
            awp: awp_field(word)?,
            rd: reg_field(word, 12),
            rs: reg_field(word, 8),
            imm: field(word, 0, 8) as u8,
        },
        OP_LDI => {
            let raw = field(word, 0, 12) as i16;
            let imm = (raw << 4) >> 4; // sign-extend 12 bits
            Instruction::Ldi {
                awp: awp_field(word)?,
                rd: reg_field(word, 12),
                imm,
            }
        }
        OP_LUI => Instruction::Lui {
            rd: reg_field(word, 12),
            imm: field(word, 0, 8) as u8,
        },
        OP_LD => Instruction::Ld {
            awp: awp_field(word)?,
            rd: reg_field(word, 12),
            base: reg_field(word, 8),
            offset: field(word, 0, 8) as u8 as i8,
        },
        OP_ST => Instruction::St {
            awp: awp_field(word)?,
            src: reg_field(word, 12),
            base: reg_field(word, 8),
            offset: field(word, 0, 8) as u8 as i8,
        },
        OP_LDA => Instruction::Lda {
            awp: awp_field(word)?,
            rd: reg_field(word, 12),
            addr: field(word, 0, 12) as u16,
        },
        OP_STA => Instruction::Sta {
            awp: awp_field(word)?,
            src: reg_field(word, 12),
            addr: field(word, 0, 12) as u16,
        },
        OP_TSET => Instruction::Tset {
            rd: reg_field(word, 12),
            base: reg_field(word, 8),
            offset: field(word, 0, 8) as u8 as i8,
        },
        o if (OP_JMP_BASE..OP_JMP_BASE + 8).contains(&o) => Instruction::Jmp {
            cond: Cond::from_code(o - OP_JMP_BASE).expect("3-bit condition"),
            target: field(word, 0, 16) as u16,
        },
        OP_CALL => Instruction::Call {
            target: field(word, 0, 16) as u16,
        },
        OP_RET => Instruction::Ret {
            pop: field(word, 0, 8) as u8,
        },
        OP_RETI => Instruction::Reti,
        OP_WINC => Instruction::Winc {
            n: field(word, 0, 8) as u8,
        },
        OP_WDEC => Instruction::Wdec {
            n: field(word, 0, 8) as u8,
        },
        OP_FORK => Instruction::Fork {
            stream: field(word, 12, 3) as u8,
            target: field(word, 0, 12) as u16,
        },
        OP_SIGNAL => Instruction::Signal {
            stream: field(word, 12, 3) as u8,
            bit: field(word, 8, 3) as u8,
        },
        OP_CLRI => Instruction::Clri {
            bit: field(word, 8, 3) as u8,
        },
        OP_STOP => Instruction::Stop,
        OP_HALT => Instruction::Halt,
        OP_BRK => Instruction::Brk,
        _ => return Err(DecodeError { word }),
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Instruction) {
        let w = encode(&i);
        assert_eq!(w & !INSTR_MASK, 0, "{i:?} encodes beyond 24 bits");
        assert_eq!(decode(w), Ok(i), "word {w:#08x}");
    }

    #[test]
    fn zero_word_is_nop() {
        assert_eq!(decode(0), Ok(Instruction::Nop));
        assert_eq!(encode(&Instruction::Nop), 0);
    }

    #[test]
    fn alu_roundtrips() {
        for op in AluOp::ALL {
            for awp in [AwpMode::None, AwpMode::Inc, AwpMode::Dec] {
                roundtrip(Instruction::Alu {
                    op,
                    awp,
                    rd: Reg::R3,
                    rs: Reg::G1,
                    rt: Reg::Sp,
                });
            }
        }
    }

    #[test]
    fn alu_imm_roundtrips() {
        for op in AluImmOp::ALL {
            roundtrip(Instruction::AluImm {
                op,
                awp: AwpMode::Inc,
                rd: Reg::R7,
                rs: Reg::R0,
                imm: 0xab,
            });
        }
    }

    #[test]
    fn ldi_sign_extension() {
        for imm in [-2048, -1, 0, 1, 2047] {
            roundtrip(Instruction::Ldi {
                awp: AwpMode::None,
                rd: Reg::R1,
                imm,
            });
        }
    }

    #[test]
    #[should_panic(expected = "out of 12-bit range")]
    fn ldi_overflow_panics() {
        encode(&Instruction::Ldi {
            awp: AwpMode::None,
            rd: Reg::R0,
            imm: 2048,
        });
    }

    #[test]
    fn memory_roundtrips() {
        roundtrip(Instruction::Ld {
            awp: AwpMode::Dec,
            rd: Reg::R2,
            base: Reg::Sp,
            offset: -128,
        });
        roundtrip(Instruction::St {
            awp: AwpMode::None,
            src: Reg::G3,
            base: Reg::R5,
            offset: 127,
        });
        roundtrip(Instruction::Lda {
            awp: AwpMode::None,
            rd: Reg::R0,
            addr: 0x0fff,
        });
        roundtrip(Instruction::Sta {
            awp: AwpMode::Inc,
            src: Reg::R4,
            addr: 0,
        });
        roundtrip(Instruction::Tset {
            rd: Reg::R1,
            base: Reg::G0,
            offset: 3,
        });
    }

    #[test]
    fn control_roundtrips() {
        for cond in Cond::ALL {
            roundtrip(Instruction::Jmp {
                cond,
                target: 0xffff,
            });
        }
        roundtrip(Instruction::Call { target: 0x1234 });
        roundtrip(Instruction::Ret { pop: 255 });
        roundtrip(Instruction::Reti);
        roundtrip(Instruction::Winc { n: 8 });
        roundtrip(Instruction::Wdec { n: 8 });
    }

    #[test]
    fn stream_roundtrips() {
        roundtrip(Instruction::Fork {
            stream: 7,
            target: 0x0abc,
        });
        roundtrip(Instruction::Signal { stream: 3, bit: 7 });
        roundtrip(Instruction::Clri { bit: 5 });
        roundtrip(Instruction::Stop);
        roundtrip(Instruction::Halt);
        roundtrip(Instruction::Brk);
        roundtrip(Instruction::Lui {
            rd: Reg::Mr,
            imm: 0xff,
        });
    }

    #[test]
    fn unknown_opcode_errors() {
        // Opcode 63 is unassigned.
        let w = 63 << 18;
        assert!(decode(w).is_err());
        // Opcode 29..31 unassigned.
        assert!(decode(29 << 18).is_err());
        // High bits beyond bit 23 are invalid.
        assert!(decode(1 << 24).is_err());
    }

    #[test]
    fn invalid_awp_field_errors() {
        // ALU add with awp code 3.
        let w = (OP_ALU_BASE << 18) | (3 << 16);
        assert!(decode(w).is_err());
    }

    #[test]
    fn decode_error_reports_word() {
        let err = decode(63 << 18).unwrap_err();
        assert_eq!(err.word(), 63 << 18);
        assert!(err.to_string().contains("invalid instruction word"));
    }
}
