//! Disassembly of DISC1 instructions back into assembler syntax.
//!
//! The produced text re-assembles to the identical instruction (the
//! assembler/disassembler pair is round-trip tested), which makes the
//! disassembler usable for trace output and for debugging generated
//! programs.

use crate::instr::{AluOp, Instruction};

/// Formats a single instruction in the syntax accepted by
/// [`asm::assemble`](crate::asm::assemble).
///
/// # Example
///
/// ```
/// use disc_isa::{disasm, AluOp, AwpMode, Instruction, Reg};
///
/// let i = Instruction::Alu {
///     op: AluOp::Add,
///     awp: AwpMode::Inc,
///     rd: Reg::R0,
///     rs: Reg::R1,
///     rt: Reg::G0,
/// };
/// assert_eq!(disasm::format_instruction(&i), "add r0, r1, g0, +w");
/// ```
pub fn format_instruction(instr: &Instruction) -> String {
    match *instr {
        Instruction::Nop => "nop".to_string(),
        Instruction::Alu {
            op,
            awp,
            rd,
            rs,
            rt,
        } => match op {
            AluOp::Mov | AluOp::Not => {
                format!("{op} {rd}, {rs}{}", awp.suffix())
            }
            AluOp::Cmp => format!("{op} {rs}, {rt}{}", awp.suffix()),
            _ => format!("{op} {rd}, {rs}, {rt}{}", awp.suffix()),
        },
        Instruction::AluImm {
            op,
            awp,
            rd,
            rs,
            imm,
        } => {
            if op.writes_rd() {
                format!("{op} {rd}, {rs}, {imm}{}", awp.suffix())
            } else {
                format!("{op} {rs}, {imm}{}", awp.suffix())
            }
        }
        Instruction::Ldi { awp, rd, imm } => {
            format!("ldi {rd}, {imm}{}", awp.suffix())
        }
        Instruction::Lui { rd, imm } => format!("lui {rd}, {imm}"),
        Instruction::Ld {
            awp,
            rd,
            base,
            offset,
        } => {
            format!("ld {rd}, [{base} {offset:+}]{}", awp.suffix())
        }
        Instruction::St {
            awp,
            src,
            base,
            offset,
        } => {
            format!("st {src}, [{base} {offset:+}]{}", awp.suffix())
        }
        Instruction::Lda { awp, rd, addr } => {
            format!("lda {rd}, {addr:#x}{}", awp.suffix())
        }
        Instruction::Sta { awp, src, addr } => {
            format!("sta {src}, {addr:#x}{}", awp.suffix())
        }
        Instruction::Tset { rd, base, offset } => {
            format!("tset {rd}, [{base} {offset:+}]")
        }
        Instruction::Jmp { cond, target } => format!("{cond} {target:#x}"),
        Instruction::Call { target } => format!("call {target:#x}"),
        Instruction::Ret { pop } => format!("ret {pop}"),
        Instruction::Reti => "reti".to_string(),
        Instruction::Winc { n } => format!("winc {n}"),
        Instruction::Wdec { n } => format!("wdec {n}"),
        Instruction::Fork { stream, target } => {
            format!("fork {stream}, {target:#x}")
        }
        Instruction::Signal { stream, bit } => format!("signal {stream}, {bit}"),
        Instruction::Clri { bit } => format!("clri {bit}"),
        Instruction::Stop => "stop".to_string(),
        Instruction::Halt => "halt".to_string(),
        Instruction::Brk => "brk".to_string(),
    }
}

/// Disassembles an encoded program word, or formats it as raw data when it
/// does not decode.
pub fn format_word(word: u32) -> String {
    match crate::encode::decode(word) {
        Ok(i) => format_instruction(&i),
        Err(_) => format!(".word {word:#08x}"),
    }
}

/// Produces a listing of `words` starting at program address `base`, one
/// `addr: text` line per word.
pub fn listing(base: u16, words: &[u32]) -> String {
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        let addr = base as usize + i;
        out.push_str(&format!("{addr:04x}: {}\n", format_word(w)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AwpMode, Cond};
    use crate::reg::Reg;

    #[test]
    fn formats_special_operand_shapes() {
        assert_eq!(
            format_instruction(&Instruction::Alu {
                op: AluOp::Cmp,
                awp: AwpMode::None,
                rd: Reg::R0,
                rs: Reg::R1,
                rt: Reg::R2,
            }),
            "cmp r1, r2"
        );
        assert_eq!(
            format_instruction(&Instruction::Alu {
                op: AluOp::Mov,
                awp: AwpMode::Dec,
                rd: Reg::G0,
                rs: Reg::R0,
                rt: Reg::R0,
            }),
            "mov g0, r0, -w"
        );
        assert_eq!(
            format_instruction(&Instruction::Ld {
                awp: AwpMode::None,
                rd: Reg::R1,
                base: Reg::Sp,
                offset: -3,
            }),
            "ld r1, [sp -3]"
        );
        assert_eq!(
            format_instruction(&Instruction::Jmp {
                cond: Cond::Nz,
                target: 0x40
            }),
            "jnz 0x40"
        );
    }

    #[test]
    fn raw_words_format_as_data() {
        assert_eq!(format_word(63 << 18), format!(".word {:#08x}", 63 << 18));
    }

    #[test]
    fn listing_numbers_addresses() {
        let words = vec![0, crate::encode::encode(&Instruction::Halt)];
        let text = listing(0x10, &words);
        assert!(text.contains("0010: nop"));
        assert!(text.contains("0011: halt"));
    }
}
