//! The DISC1 instruction model.

use std::fmt;

use crate::reg::Reg;

/// Stack-window side effect carried by an instruction.
///
/// DISC adds *"stack increment and decrement ... to some instructions such as
/// Load, Store, Add, Subtract, etc."* — the adjustment happens **at the end
/// of the instruction**, after its operands were read and its result written
/// relative to the old window position.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum AwpMode {
    /// Leave the active window pointer unchanged.
    #[default]
    None,
    /// Increment the AWP: a fresh `R0` is allocated; old `R0` becomes `R1`.
    Inc,
    /// Decrement the AWP: `R0` is discarded; old `R1` becomes `R0`.
    Dec,
}

impl AwpMode {
    /// The 2-bit encoding of the mode.
    pub const fn code(self) -> u32 {
        match self {
            AwpMode::None => 0,
            AwpMode::Inc => 1,
            AwpMode::Dec => 2,
        }
    }

    /// Decodes the 2-bit field; `3` is an invalid encoding.
    pub const fn from_code(code: u32) -> Option<AwpMode> {
        match code {
            0 => Some(AwpMode::None),
            1 => Some(AwpMode::Inc),
            2 => Some(AwpMode::Dec),
            _ => None,
        }
    }

    /// Assembly suffix (`""`, `", +w"`, `", -w"`).
    pub const fn suffix(self) -> &'static str {
        match self {
            AwpMode::None => "",
            AwpMode::Inc => ", +w",
            AwpMode::Dec => ", -w",
        }
    }
}

/// Three-operand ALU operations (`rd <- rs op rt`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `rd = rs + rt`, sets `Z N C V`.
    Add,
    /// `rd = rs + rt + C`.
    Adc,
    /// `rd = rs - rt`.
    Sub,
    /// `rd = rs - rt - borrow`.
    Sbc,
    /// `rd = rs & rt`.
    And,
    /// `rd = rs | rt`.
    Or,
    /// `rd = rs ^ rt`.
    Xor,
    /// `rd = low16(rs * rt)` using the 16×16 hardware multiplier.
    Mul,
    /// `rd = high16(rs * rt)`.
    Mulh,
    /// `rd = rs << (rt & 0xf)`.
    Shl,
    /// `rd = rs >> (rt & 0xf)` (logical).
    Shr,
    /// `rd = rs >> (rt & 0xf)` (arithmetic).
    Asr,
    /// `rd = rs` (register move; `rt` ignored).
    Mov,
    /// `rd = !rs` (bitwise complement; `rt` ignored).
    Not,
    /// Flags from `rs - rt`; no register written (`rd` ignored).
    Cmp,
}

impl AluOp {
    /// All R-format ALU operations in encoding order.
    pub const ALL: [AluOp; 15] = [
        AluOp::Add,
        AluOp::Adc,
        AluOp::Sub,
        AluOp::Sbc,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Mul,
        AluOp::Mulh,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Asr,
        AluOp::Mov,
        AluOp::Not,
        AluOp::Cmp,
    ];

    /// Assembly mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Adc => "adc",
            AluOp::Sub => "sub",
            AluOp::Sbc => "sbc",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Asr => "asr",
            AluOp::Mov => "mov",
            AluOp::Not => "not",
            AluOp::Cmp => "cmp",
        }
    }

    /// `true` when the operation writes `rd` (everything except `cmp`).
    pub const fn writes_rd(self) -> bool {
        !matches!(self, AluOp::Cmp)
    }

    /// `true` when the operation reads `rt` (two-source operations).
    pub const fn reads_rt(self) -> bool {
        !matches!(self, AluOp::Mov | AluOp::Not)
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Immediate-operand ALU operations (`rd <- rs op imm8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// `rd = rs + imm`.
    Addi,
    /// `rd = rs - imm`.
    Subi,
    /// `rd = rs & imm`.
    Andi,
    /// `rd = rs | imm`.
    Ori,
    /// `rd = rs ^ imm`.
    Xori,
    /// Flags from `rs - imm`; no register written.
    Cmpi,
}

impl AluImmOp {
    /// All I-format ALU operations in encoding order.
    pub const ALL: [AluImmOp; 6] = [
        AluImmOp::Addi,
        AluImmOp::Subi,
        AluImmOp::Andi,
        AluImmOp::Ori,
        AluImmOp::Xori,
        AluImmOp::Cmpi,
    ];

    /// Assembly mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Subi => "subi",
            AluImmOp::Andi => "andi",
            AluImmOp::Ori => "ori",
            AluImmOp::Xori => "xori",
            AluImmOp::Cmpi => "cmpi",
        }
    }

    /// `true` when the operation writes `rd` (everything except `cmpi`).
    pub const fn writes_rd(self) -> bool {
        !matches!(self, AluImmOp::Cmpi)
    }
}

impl fmt::Display for AluImmOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Jump conditions, evaluated against the stream's `Z N C V` flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Unconditional.
    #[default]
    Always,
    /// Zero flag set (`jz`).
    Z,
    /// Zero flag clear (`jnz`).
    Nz,
    /// Carry flag set (`jc`).
    C,
    /// Carry flag clear (`jnc`).
    Nc,
    /// Negative flag set (`jn`).
    N,
    /// Negative flag clear (`jnn`).
    Nn,
    /// Overflow flag set (`jv`).
    V,
}

impl Cond {
    /// All conditions in encoding order.
    pub const ALL: [Cond; 8] = [
        Cond::Always,
        Cond::Z,
        Cond::Nz,
        Cond::C,
        Cond::Nc,
        Cond::N,
        Cond::Nn,
        Cond::V,
    ];

    /// The 3-bit encoding of the condition.
    pub const fn code(self) -> u32 {
        match self {
            Cond::Always => 0,
            Cond::Z => 1,
            Cond::Nz => 2,
            Cond::C => 3,
            Cond::Nc => 4,
            Cond::N => 5,
            Cond::Nn => 6,
            Cond::V => 7,
        }
    }

    /// Decodes a 3-bit condition code.
    pub const fn from_code(code: u32) -> Option<Cond> {
        if code < 8 {
            Some(Self::ALL[code as usize])
        } else {
            None
        }
    }

    /// Jump mnemonic using this condition.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Cond::Always => "jmp",
            Cond::Z => "jz",
            Cond::Nz => "jnz",
            Cond::C => "jc",
            Cond::Nc => "jnc",
            Cond::N => "jn",
            Cond::Nn => "jnn",
            Cond::V => "jv",
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A decoded DISC1 instruction.
///
/// Field widths reflect the 24-bit instruction word: immediates are 8 bits
/// (sign behaviour documented per variant), load-immediates 12 bits, jump
/// targets 16 bits, direct addresses and fork targets 12 bits.
///
/// # Example
///
/// ```
/// use disc_isa::{AluOp, AwpMode, Instruction, Reg};
///
/// let i = Instruction::Alu {
///     op: AluOp::Add,
///     awp: AwpMode::Inc,
///     rd: Reg::R0,
///     rs: Reg::R1,
///     rt: Reg::G0,
/// };
/// let word = disc_isa::encode::encode(&i);
/// assert_eq!(disc_isa::encode::decode(word)?, i);
/// # Ok::<(), disc_isa::DecodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Instruction {
    /// No operation. The all-zero word decodes to `nop`.
    #[default]
    Nop,
    /// Three-operand ALU operation.
    Alu {
        /// Operation selector.
        op: AluOp,
        /// Stack-window side effect.
        awp: AwpMode,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs: Reg,
        /// Second source register (ignored by `mov`/`not`).
        rt: Reg,
    },
    /// ALU operation with an 8-bit unsigned immediate.
    AluImm {
        /// Operation selector.
        op: AluImmOp,
        /// Stack-window side effect.
        awp: AwpMode,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
        /// Unsigned 8-bit immediate operand.
        imm: u8,
    },
    /// Load a sign-extended 12-bit immediate: `rd = imm`.
    Ldi {
        /// Stack-window side effect.
        awp: AwpMode,
        /// Destination register.
        rd: Reg,
        /// Signed immediate in `-2048..=2047`.
        imm: i16,
    },
    /// Load upper byte: `rd = (imm << 8) | (rd & 0x00ff)`.
    Lui {
        /// Destination register.
        rd: Reg,
        /// Byte placed in bits `15..=8`.
        imm: u8,
    },
    /// Load from data memory: `rd = mem[rs + offset]`.
    ///
    /// Addresses below the internal-memory size access the synchronous
    /// on-chip RAM; all other addresses go through the asynchronous bus
    /// interface (pseudo-DMA, §3.6.1 of the paper).
    Ld {
        /// Stack-window side effect.
        awp: AwpMode,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset added to the base.
        offset: i8,
    },
    /// Store to data memory: `mem[base + offset] = src`.
    St {
        /// Stack-window side effect.
        awp: AwpMode,
        /// Source register providing the stored value.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset added to the base.
        offset: i8,
    },
    /// Direct load from internal memory: `rd = mem[addr]`
    /// (the paper's "9-bits immediate addressing", widened to 12 bits).
    Lda {
        /// Stack-window side effect.
        awp: AwpMode,
        /// Destination register.
        rd: Reg,
        /// Direct word address in `0..=0x0fff`.
        addr: u16,
    },
    /// Direct store to internal memory: `mem[addr] = src`.
    Sta {
        /// Stack-window side effect.
        awp: AwpMode,
        /// Source register providing the stored value.
        src: Reg,
        /// Direct word address in `0..=0x0fff`.
        addr: u16,
    },
    /// Atomic test-and-set on internal memory:
    /// `rd = mem[base + offset]; mem[base + offset] = 0xffff`.
    ///
    /// The read-modify-write is indivisible with respect to all other
    /// streams, making it usable as a semaphore primitive (§3.6.2).
    Tset {
        /// Destination receiving the previous memory value.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset added to the base.
        offset: i8,
    },
    /// Conditional or unconditional jump to a 16-bit absolute target.
    Jmp {
        /// Condition guarding the jump.
        cond: Cond,
        /// Absolute program address of the target.
        target: u16,
    },
    /// Procedure call: increments the AWP and stores the return address in
    /// the fresh `R0`, then jumps (§3.5).
    Call {
        /// Absolute program address of the callee.
        target: u16,
    },
    /// Procedure return: pops `pop` locals (`AWP -= pop`), restores the
    /// program counter from `R0`, then pops the return slot
    /// (`AWP -= 1`).
    Ret {
        /// Number of locals allocated since the matching `call`.
        pop: u8,
    },
    /// Return from interrupt: restores the pre-interrupt program counter and
    /// clears the in-service IR bit (only the owning stream may clear its
    /// IR bits).
    Reti,
    /// Allocate `n` fresh window registers: `AWP += n`.
    Winc {
        /// Number of registers to allocate.
        n: u8,
    },
    /// Release `n` window registers: `AWP -= n`.
    Wdec {
        /// Number of registers to release.
        n: u8,
    },
    /// Start instruction stream `stream` at program address `target`
    /// by setting its background IR bit (bit 0).
    Fork {
        /// Target stream index (`0..8`).
        stream: u8,
        /// Absolute program address in `0..=0x0fff` where the stream starts.
        target: u16,
    },
    /// Software interrupt: set bit `bit` in stream `stream`'s IR.
    ///
    /// This is the DISC inter-stream communication and synchronization
    /// mechanism (§3.6.2/3.6.3).
    Signal {
        /// Target stream index (`0..8`).
        stream: u8,
        /// Interrupt bit to request (`0..8`, 7 = highest priority).
        bit: u8,
    },
    /// Clear bit `bit` of the executing stream's own IR.
    Clri {
        /// Interrupt bit to clear (`0..8`).
        bit: u8,
    },
    /// Deactivate the executing stream by clearing its entire IR; it will
    /// not be scheduled again until some interrupt bit is set.
    Stop,
    /// Halt the whole machine (simulation convenience; a real DISC1 would
    /// idle).
    Halt,
    /// Breakpoint: the simulator stops and reports the stream and address.
    Brk,
}

impl Instruction {
    /// The stack-window side effect of this instruction.
    ///
    /// `call`/`ret`/`reti` manage the window implicitly and report
    /// [`AwpMode::None`] here; `winc`/`wdec` likewise adjust through their
    /// own operand.
    pub fn awp_mode(&self) -> AwpMode {
        match *self {
            Instruction::Alu { awp, .. }
            | Instruction::AluImm { awp, .. }
            | Instruction::Ldi { awp, .. }
            | Instruction::Ld { awp, .. }
            | Instruction::St { awp, .. }
            | Instruction::Lda { awp, .. }
            | Instruction::Sta { awp, .. } => awp,
            _ => AwpMode::None,
        }
    }

    /// `true` for instructions that may redirect the stream's control flow
    /// (jump-type instructions in the paper's `aljmp` sense).
    pub fn is_flow(&self) -> bool {
        matches!(
            self,
            Instruction::Jmp { .. }
                | Instruction::Call { .. }
                | Instruction::Ret { .. }
                | Instruction::Reti
                | Instruction::Fork { .. }
        )
    }

    /// `true` for instructions that access data memory (internal or
    /// external).
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instruction::Ld { .. }
                | Instruction::St { .. }
                | Instruction::Lda { .. }
                | Instruction::Sta { .. }
                | Instruction::Tset { .. }
        )
    }

    /// Registers read by this instruction, in operand order.
    pub fn sources(&self) -> Vec<Reg> {
        match *self {
            Instruction::Alu { op, rs, rt, .. } => {
                if op.reads_rt() {
                    vec![rs, rt]
                } else {
                    vec![rs]
                }
            }
            Instruction::AluImm { rs, .. } => vec![rs],
            // `lui` merges into the existing low byte, so it reads `rd`.
            Instruction::Lui { rd, .. } => vec![rd],
            Instruction::Ld { base, .. } => vec![base],
            Instruction::St { src, base, .. } => vec![src, base],
            Instruction::Sta { src, .. } => vec![src],
            Instruction::Tset { base, .. } => vec![base],
            _ => Vec::new(),
        }
    }

    /// Register written by this instruction, if any.
    ///
    /// Loads report their destination even though the write may complete
    /// asynchronously through the bus interface.
    pub fn destination(&self) -> Option<Reg> {
        match *self {
            Instruction::Alu { op, rd, .. } if op.writes_rd() => Some(rd),
            Instruction::AluImm { op, rd, .. } if op.writes_rd() => Some(rd),
            Instruction::Ldi { rd, .. }
            | Instruction::Lui { rd, .. }
            | Instruction::Ld { rd, .. }
            | Instruction::Lda { rd, .. }
            | Instruction::Tset { rd, .. } => Some(rd),
            _ => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::disasm::format_instruction(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn awp_mode_codes_roundtrip() {
        for m in [AwpMode::None, AwpMode::Inc, AwpMode::Dec] {
            assert_eq!(AwpMode::from_code(m.code()), Some(m));
        }
        assert_eq!(AwpMode::from_code(3), None);
    }

    #[test]
    fn cond_codes_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_code(c.code()), Some(c));
        }
        assert_eq!(Cond::from_code(8), None);
    }

    #[test]
    fn cmp_has_no_destination() {
        let i = Instruction::Alu {
            op: AluOp::Cmp,
            awp: AwpMode::None,
            rd: Reg::R0,
            rs: Reg::R1,
            rt: Reg::R2,
        };
        assert_eq!(i.destination(), None);
        assert_eq!(i.sources(), vec![Reg::R1, Reg::R2]);
    }

    #[test]
    fn mov_reads_single_source() {
        let i = Instruction::Alu {
            op: AluOp::Mov,
            awp: AwpMode::None,
            rd: Reg::R0,
            rs: Reg::G1,
            rt: Reg::R7,
        };
        assert_eq!(i.sources(), vec![Reg::G1]);
        assert_eq!(i.destination(), Some(Reg::R0));
    }

    #[test]
    fn flow_classification() {
        assert!(Instruction::Jmp {
            cond: Cond::Z,
            target: 4
        }
        .is_flow());
        assert!(Instruction::Ret { pop: 0 }.is_flow());
        assert!(Instruction::Reti.is_flow());
        assert!(!Instruction::Nop.is_flow());
        assert!(!Instruction::Stop.is_flow());
    }

    #[test]
    fn memory_classification() {
        assert!(Instruction::Ld {
            awp: AwpMode::None,
            rd: Reg::R0,
            base: Reg::R1,
            offset: 0
        }
        .is_memory());
        assert!(Instruction::Tset {
            rd: Reg::R0,
            base: Reg::G0,
            offset: -4
        }
        .is_memory());
        assert!(!Instruction::Halt.is_memory());
    }

    #[test]
    fn store_sources_include_value_and_base() {
        let i = Instruction::St {
            awp: AwpMode::Dec,
            src: Reg::R2,
            base: Reg::Sp,
            offset: 1,
        };
        assert_eq!(i.sources(), vec![Reg::R2, Reg::Sp]);
        assert_eq!(i.destination(), None);
        assert_eq!(i.awp_mode(), AwpMode::Dec);
    }
}
