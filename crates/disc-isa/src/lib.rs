//! Instruction set architecture of **DISC1**, the experimental implementation
//! of the Dynamic Instruction Stream Computer (Nemirovsky, Brewer & Wood,
//! MICRO 1991).
//!
//! DISC1 is a 16-bit load/store RISC with a Harvard organization: a 24-bit
//! program bus and a 16-bit asynchronous data bus. Every instruction is
//! effectively single cycle. The distinguishing ISA features are:
//!
//! * **Stack-window register file** — the eight local registers `R0..R7` are
//!   a window into a per-stream register stack addressed by the *active
//!   window pointer* (AWP). Many instructions carry an optional `+w` / `-w`
//!   suffix that increments or decrements the AWP as a side effect
//!   (see [`AwpMode`]), so procedure call/return and local allocation cost
//!   no extra instructions.
//! * **Stream control** — `FORK`, `STOP`, `SIGNAL` and `CLRI` start, halt and
//!   synchronize the machine's simultaneously resident instruction streams.
//! * **Semaphore support** — `TSET` performs an atomic read-modify-write on
//!   internal memory for inter-stream locking.
//!
//! This crate defines the instruction model ([`Instruction`]), the register
//! name space ([`Reg`]), the binary 24-bit encoding
//! ([`encode::encode`] / [`encode::decode`]), a two-pass
//! [`assembler`](crate::asm) with labels and directives, a
//! [`disassembler`](crate::disasm), and the [`Program`] container consumed by
//! the `disc-core` cycle-accurate machine.
//!
//! # Example
//!
//! ```
//! use disc_isa::Program;
//!
//! let program = Program::assemble(
//!     r#"
//!     .stream 0, start
//! start:
//!     ldi  r0, 10
//!     ldi  r1, 0
//! loop:
//!     add  r1, r1, r0
//!     subi r0, r0, 1
//!     jnz  loop
//!     halt
//! "#,
//! )?;
//! assert_eq!(program.entry(0), Some(0));
//! # Ok::<(), disc_isa::AsmError>(())
//! ```

pub mod asm;
pub mod disasm;
pub mod encode;
mod instr;
mod program;
mod reg;

pub use asm::AsmError;
pub use encode::DecodeError;
pub use instr::{AluImmOp, AluOp, AwpMode, Cond, Instruction};
pub use program::{Program, ProgramBuilder};
pub use reg::{ParseRegError, Reg};

/// Number of instruction streams DISC1 supports concurrently.
pub const DISC1_STREAMS: usize = 4;

/// Maximum number of instruction streams the simulator models.
pub const MAX_STREAMS: usize = 8;

/// Number of visible window (local) registers per stream (`R0..R7`).
pub const WINDOW_REGS: usize = 8;

/// Number of global registers shared between all streams (`G0..G3`).
pub const GLOBAL_REGS: usize = 4;

/// Number of interrupt priority levels per stream (bits of the IR).
pub const IRQ_LEVELS: usize = 8;

/// Width of a program-memory word in bits (the program bus is 24 bits wide).
pub const INSTR_BITS: u32 = 24;

/// Mask selecting the valid bits of an encoded instruction word.
pub const INSTR_MASK: u32 = (1 << INSTR_BITS) - 1;
