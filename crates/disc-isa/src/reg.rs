//! Register name space of a DISC1 instruction stream.

use std::fmt;
use std::str::FromStr;

/// One of the sixteen architectural registers visible to an instruction
/// stream.
///
/// DISC1 gives each stream *"16 registers per instruction stream, four
/// global, four special registers and eight local (stack window)
/// registers"*:
///
/// * `R0..R7` — the stack window. `R0` is the register the active window
///   pointer (AWP) currently points at; `Rn` addresses `window[AWP - n]`.
/// * `G0..G3` — global registers shared by every stream, used for
///   inter-stream parameter passing and (being read-modify-write capable)
///   as semaphores.
/// * `Sp` — software stack pointer (a plain 16-bit register; DISC1 keeps a
///   data stack in internal memory for spills and deep frames).
/// * `Sr` — status register exposing the `Z N C V` flags in bits `3..=0`.
/// * `Ir` — the stream's 8-bit interrupt request register.
/// * `Mr` — the stream's 8-bit interrupt mask register.
///
/// # Example
///
/// ```
/// use disc_isa::Reg;
///
/// let r: Reg = "g2".parse()?;
/// assert_eq!(r, Reg::G2);
/// assert_eq!(r.index(), 10);
/// assert!(r.is_global());
/// # Ok::<(), disc_isa::ParseRegError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    /// Window register 0 (top of the active window; `window[AWP]`).
    R0 = 0,
    /// Window register 1 (`window[AWP - 1]`).
    R1 = 1,
    /// Window register 2.
    R2 = 2,
    /// Window register 3.
    R3 = 3,
    /// Window register 4.
    R4 = 4,
    /// Window register 5.
    R5 = 5,
    /// Window register 6.
    R6 = 6,
    /// Window register 7 (deepest visible window register).
    R7 = 7,
    /// Global register 0, shared between all streams.
    G0 = 8,
    /// Global register 1.
    G1 = 9,
    /// Global register 2.
    G2 = 10,
    /// Global register 3.
    G3 = 11,
    /// Software stack pointer.
    Sp = 12,
    /// Status register (flags `Z N C V` in bits `3..=0`).
    Sr = 13,
    /// Interrupt request register of the executing stream.
    Ir = 14,
    /// Interrupt mask register of the executing stream.
    Mr = 15,
}

impl Reg {
    /// All sixteen registers in encoding order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::G0,
        Reg::G1,
        Reg::G2,
        Reg::G3,
        Reg::Sp,
        Reg::Sr,
        Reg::Ir,
        Reg::Mr,
    ];

    /// The 4-bit encoding index of this register.
    #[inline]
    pub const fn index(self) -> u8 {
        self as u8
    }

    /// Decodes a 4-bit register field.
    ///
    /// Returns `None` if `index >= 16`.
    #[inline]
    pub const fn from_index(index: u8) -> Option<Reg> {
        if index < 16 {
            Some(Self::ALL[index as usize])
        } else {
            None
        }
    }

    /// Returns the `n`-th window register (`R0..R7`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    #[inline]
    pub const fn window(n: u8) -> Reg {
        assert!(n < 8, "window register index out of range");
        Self::ALL[n as usize]
    }

    /// Returns the `n`-th global register (`G0..G3`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 4`.
    #[inline]
    pub const fn global(n: u8) -> Reg {
        assert!(n < 4, "global register index out of range");
        Self::ALL[8 + n as usize]
    }

    /// `true` for the stack-window registers `R0..R7`.
    #[inline]
    pub const fn is_window(self) -> bool {
        (self as u8) < 8
    }

    /// `true` for the shared global registers `G0..G3`.
    #[inline]
    pub const fn is_global(self) -> bool {
        let i = self as u8;
        i >= 8 && i < 12
    }

    /// `true` for the special registers `SP`, `SR`, `IR`, `MR`.
    #[inline]
    pub const fn is_special(self) -> bool {
        (self as u8) >= 12
    }

    /// Assembly mnemonic of the register (lower case).
    pub const fn name(self) -> &'static str {
        match self {
            Reg::R0 => "r0",
            Reg::R1 => "r1",
            Reg::R2 => "r2",
            Reg::R3 => "r3",
            Reg::R4 => "r4",
            Reg::R5 => "r5",
            Reg::R6 => "r6",
            Reg::R7 => "r7",
            Reg::G0 => "g0",
            Reg::G1 => "g1",
            Reg::G2 => "g2",
            Reg::G3 => "g3",
            Reg::Sp => "sp",
            Reg::Sr => "sr",
            Reg::Ir => "ir",
            Reg::Mr => "mr",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl ParseRegError {
    /// The text that failed to parse.
    pub fn text(&self) -> &str {
        &self.text
    }
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        Reg::ALL
            .iter()
            .copied()
            .find(|r| r.name() == lower)
            .ok_or_else(|| ParseRegError {
                text: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index()), Some(r));
        }
        assert_eq!(Reg::from_index(16), None);
        assert_eq!(Reg::from_index(255), None);
    }

    #[test]
    fn name_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(r.name().parse::<Reg>().unwrap(), r);
            assert_eq!(r.name().to_ascii_uppercase().parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!("r8".parse::<Reg>().is_err());
        assert!("g4".parse::<Reg>().is_err());
        assert!("".parse::<Reg>().is_err());
        assert!("pc".parse::<Reg>().is_err());
    }

    #[test]
    fn classification() {
        assert!(Reg::R0.is_window());
        assert!(Reg::R7.is_window());
        assert!(!Reg::G0.is_window());
        assert!(Reg::G3.is_global());
        assert!(!Reg::Sp.is_global());
        assert!(Reg::Sp.is_special());
        assert!(Reg::Mr.is_special());
        assert!(!Reg::R3.is_special());
    }

    #[test]
    fn window_and_global_constructors() {
        assert_eq!(Reg::window(0), Reg::R0);
        assert_eq!(Reg::window(7), Reg::R7);
        assert_eq!(Reg::global(0), Reg::G0);
        assert_eq!(Reg::global(3), Reg::G3);
    }

    #[test]
    #[should_panic(expected = "window register index out of range")]
    fn window_out_of_range_panics() {
        let _ = Reg::window(8);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Reg::G2.to_string(), "g2");
        assert_eq!(Reg::Ir.to_string(), "ir");
    }
}
