//! Program images loaded into DISC1 program memory.

use std::collections::HashMap;

use crate::encode::encode;
use crate::instr::Instruction;
use crate::{INSTR_MASK, IRQ_LEVELS, MAX_STREAMS};

/// An assembled or programmatically built DISC1 program.
///
/// A `Program` owns the 24-bit program-memory image (Harvard instruction
/// space), the per-stream entry points declared with `.stream`, the
/// per-stream interrupt vectors declared with `.vector`, and the symbol
/// table produced by the assembler.
///
/// # Example
///
/// ```
/// use disc_isa::{Instruction, Program, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new();
/// b.entry(0);
/// b.emit(Instruction::Halt);
/// let program = b.build();
/// assert_eq!(program.entry(0), Some(0));
/// assert_eq!(program.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    words: Vec<u32>,
    entries: [Option<u16>; MAX_STREAMS],
    vectors: [[Option<u16>; IRQ_LEVELS]; MAX_STREAMS],
    symbols: HashMap<String, u16>,
}

impl Program {
    /// Creates an empty program (all memory reads as `nop`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Assembles `source` into a program. Convenience alias for
    /// [`asm::assemble`](crate::asm::assemble).
    ///
    /// # Errors
    ///
    /// Propagates [`AsmError`](crate::AsmError) from the assembler.
    pub fn assemble(source: &str) -> Result<Self, crate::AsmError> {
        crate::asm::assemble(source)
    }

    /// The program word at `addr`; unwritten addresses read as `0` (`nop`).
    #[inline]
    pub fn word(&self, addr: u16) -> u32 {
        self.words.get(addr as usize).copied().unwrap_or(0)
    }

    /// Writes a raw 24-bit word at `addr`, growing the image as needed.
    ///
    /// # Panics
    ///
    /// Panics if `value` has bits set above bit 23.
    pub fn set_word(&mut self, addr: u16, value: u32) {
        assert_eq!(value & !INSTR_MASK, 0, "program word exceeds 24 bits");
        let idx = addr as usize;
        if idx >= self.words.len() {
            self.words.resize(idx + 1, 0);
        }
        self.words[idx] = value;
    }

    /// Encodes and stores `instr` at `addr`.
    pub fn set_instruction(&mut self, addr: u16, instr: &Instruction) {
        self.set_word(addr, encode(instr));
    }

    /// Number of words in the image (highest written address + 1).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when no word has been written.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Entry address of `stream`, if declared.
    pub fn entry(&self, stream: usize) -> Option<u16> {
        self.entries.get(stream).copied().flatten()
    }

    /// Declares the entry address of `stream`.
    ///
    /// # Panics
    ///
    /// Panics if `stream >= MAX_STREAMS`.
    pub fn set_entry(&mut self, stream: usize, addr: u16) {
        self.entries[stream] = Some(addr);
    }

    /// Interrupt vector of (`stream`, `bit`), if declared.
    ///
    /// Bit 0 is the background level and never vectors.
    pub fn vector(&self, stream: usize, bit: u8) -> Option<u16> {
        self.vectors
            .get(stream)
            .and_then(|v| v.get(bit as usize))
            .copied()
            .flatten()
    }

    /// Declares the interrupt vector for (`stream`, `bit`).
    ///
    /// # Panics
    ///
    /// Panics if `stream >= MAX_STREAMS` or `bit` is 0 or above 7 — bit 0
    /// is the unvectored background level.
    pub fn set_vector(&mut self, stream: usize, bit: u8, addr: u16) {
        assert!(
            (1..IRQ_LEVELS as u8).contains(&bit),
            "vector bit {bit} out of range 1..=7"
        );
        self.vectors[stream][bit as usize] = Some(addr);
    }

    /// Looks up an assembler symbol (label or `.equ` constant).
    pub fn symbol(&self, name: &str) -> Option<u16> {
        self.symbols.get(name).copied()
    }

    /// Defines a symbol (used by the assembler; also handy in tests).
    pub fn define_symbol(&mut self, name: String, value: u16) {
        self.symbols.insert(name, value);
    }

    /// Iterates over `(address, word)` pairs of the image.
    pub fn iter(&self) -> impl Iterator<Item = (u16, u32)> + '_ {
        self.words.iter().enumerate().map(|(a, &w)| (a as u16, w))
    }

    /// Disassembly listing of the whole image.
    pub fn listing(&self) -> String {
        crate::disasm::listing(0, &self.words)
    }
}

/// Incremental builder producing a [`Program`] from [`Instruction`] values,
/// for tests and generated workloads that don't want to go through
/// assembler text.
///
/// The builder maintains a location counter; labels are plain `u16`
/// addresses obtained from [`ProgramBuilder::here`] or reserved with
/// [`ProgramBuilder::reserve`] and patched later.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    program: Program,
    pc: u16,
}

impl ProgramBuilder {
    /// Creates a builder with the location counter at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current location counter.
    pub fn here(&self) -> u16 {
        self.pc
    }

    /// Moves the location counter.
    pub fn org(&mut self, addr: u16) -> &mut Self {
        self.pc = addr;
        self
    }

    /// Emits `instr` at the location counter and advances it.
    pub fn emit(&mut self, instr: Instruction) -> &mut Self {
        self.program.set_instruction(self.pc, &instr);
        self.pc = self.pc.wrapping_add(1);
        self
    }

    /// Emits every instruction of `instrs` in order.
    pub fn emit_all<I: IntoIterator<Item = Instruction>>(&mut self, instrs: I) -> &mut Self {
        for i in instrs {
            self.emit(i);
        }
        self
    }

    /// Emits a placeholder `nop` and returns its address for later patching
    /// with [`ProgramBuilder::patch`].
    pub fn reserve(&mut self) -> u16 {
        let at = self.pc;
        self.emit(Instruction::Nop);
        at
    }

    /// Replaces the instruction at `addr` (typically a reserved slot).
    pub fn patch(&mut self, addr: u16, instr: Instruction) -> &mut Self {
        self.program.set_instruction(addr, &instr);
        self
    }

    /// Declares the current location as the entry of `stream`.
    pub fn entry(&mut self, stream: usize) -> &mut Self {
        self.program.set_entry(stream, self.pc);
        self
    }

    /// Declares the current location as the vector of (`stream`, `bit`).
    pub fn vector(&mut self, stream: usize, bit: u8) -> &mut Self {
        self.program.set_vector(stream, bit, self.pc);
        self
    }

    /// Defines a named symbol at the current location.
    pub fn label(&mut self, name: &str) -> u16 {
        self.program.define_symbol(name.to_string(), self.pc);
        self.pc
    }

    /// Finishes the build.
    pub fn build(self) -> Program {
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Cond;

    #[test]
    fn unwritten_memory_reads_nop() {
        let p = Program::new();
        assert_eq!(p.word(0), 0);
        assert_eq!(p.word(0xffff), 0);
        assert!(p.is_empty());
    }

    #[test]
    fn set_word_grows_image() {
        let mut p = Program::new();
        p.set_word(10, 0x00abcd);
        assert_eq!(p.len(), 11);
        assert_eq!(p.word(10), 0x00abcd);
        assert_eq!(p.word(5), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds 24 bits")]
    fn set_word_rejects_wide_values() {
        Program::new().set_word(0, 0x0100_0000);
    }

    #[test]
    fn builder_reserve_and_patch() {
        let mut b = ProgramBuilder::new();
        b.entry(0);
        let hole = b.reserve();
        b.emit(Instruction::Halt);
        let target = b.here();
        b.emit(Instruction::Nop);
        b.patch(
            hole,
            Instruction::Jmp {
                cond: Cond::Always,
                target,
            },
        );
        let p = b.build();
        assert_eq!(
            crate::encode::decode(p.word(hole)).unwrap(),
            Instruction::Jmp {
                cond: Cond::Always,
                target: 2
            }
        );
    }

    #[test]
    fn builder_labels_become_symbols() {
        let mut b = ProgramBuilder::new();
        b.emit(Instruction::Nop);
        let addr = b.label("loop");
        b.emit(Instruction::Halt);
        let p = b.build();
        assert_eq!(p.symbol("loop"), Some(addr));
        assert_eq!(p.symbol("missing"), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vector_bit_zero_rejected() {
        Program::new().set_vector(0, 0, 0x100);
    }

    #[test]
    fn iter_enumerates_image() {
        let mut p = Program::new();
        p.set_instruction(0, &Instruction::Halt);
        p.set_instruction(1, &Instruction::Brk);
        let pairs: Vec<_> = p.iter().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, 0);
    }

    #[test]
    fn listing_is_roundtrippable_text() {
        let mut b = ProgramBuilder::new();
        b.emit(Instruction::Halt);
        let p = b.build();
        assert!(p.listing().contains("halt"));
    }
}
