//! Property-based round-trip tests:
//! instruction → encode → decode → identical instruction, and
//! instruction → disassemble → assemble → identical encoding.

use disc_isa::{encode, AluImmOp, AluOp, AwpMode, Cond, Instruction, Program, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_awp() -> impl Strategy<Value = AwpMode> {
    prop_oneof![Just(AwpMode::None), Just(AwpMode::Inc), Just(AwpMode::Dec)]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

fn arb_alu_imm_op() -> impl Strategy<Value = AluImmOp> {
    (0usize..AluImmOp::ALL.len()).prop_map(|i| AluImmOp::ALL[i])
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0usize..Cond::ALL.len()).prop_map(|i| Cond::ALL[i])
}

prop_compose! {
    fn arb_alu()(op in arb_alu_op(), awp in arb_awp(), rd in arb_reg(),
                 rs in arb_reg(), rt in arb_reg()) -> Instruction {
        Instruction::Alu { op, awp, rd, rs, rt }
    }
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Nop),
        arb_alu(),
        (
            arb_alu_imm_op(),
            arb_awp(),
            arb_reg(),
            arb_reg(),
            any::<u8>()
        )
            .prop_map(|(op, awp, rd, rs, imm)| Instruction::AluImm {
                op,
                awp,
                rd,
                rs,
                imm
            }),
        (arb_awp(), arb_reg(), -2048i16..=2047)
            .prop_map(|(awp, rd, imm)| { Instruction::Ldi { awp, rd, imm } }),
        (arb_reg(), any::<u8>()).prop_map(|(rd, imm)| Instruction::Lui { rd, imm }),
        (arb_awp(), arb_reg(), arb_reg(), any::<i8>()).prop_map(|(awp, rd, base, offset)| {
            Instruction::Ld {
                awp,
                rd,
                base,
                offset,
            }
        }),
        (arb_awp(), arb_reg(), arb_reg(), any::<i8>()).prop_map(|(awp, src, base, offset)| {
            Instruction::St {
                awp,
                src,
                base,
                offset,
            }
        }),
        (arb_awp(), arb_reg(), 0u16..=0x0fff)
            .prop_map(|(awp, rd, addr)| { Instruction::Lda { awp, rd, addr } }),
        (arb_awp(), arb_reg(), 0u16..=0x0fff)
            .prop_map(|(awp, src, addr)| { Instruction::Sta { awp, src, addr } }),
        (arb_reg(), arb_reg(), any::<i8>())
            .prop_map(|(rd, base, offset)| { Instruction::Tset { rd, base, offset } }),
        (arb_cond(), any::<u16>()).prop_map(|(cond, target)| Instruction::Jmp { cond, target }),
        any::<u16>().prop_map(|target| Instruction::Call { target }),
        any::<u8>().prop_map(|pop| Instruction::Ret { pop }),
        Just(Instruction::Reti),
        any::<u8>().prop_map(|n| Instruction::Winc { n }),
        any::<u8>().prop_map(|n| Instruction::Wdec { n }),
        (0u8..8, 0u16..=0x0fff).prop_map(|(stream, target)| Instruction::Fork { stream, target }),
        (0u8..8, 0u8..8).prop_map(|(stream, bit)| Instruction::Signal { stream, bit }),
        (0u8..8).prop_map(|bit| Instruction::Clri { bit }),
        Just(Instruction::Stop),
        Just(Instruction::Halt),
        Just(Instruction::Brk),
    ]
}

/// Canonical form of an instruction: don't-care fields forced to the
/// value the assembler produces (`cmp`/`cmpi` take `rd = r0`, `mov`/`not`
/// take `rt = r0`). Textual round trips are exact on canonical forms.
fn canonical(instr: &Instruction) -> Instruction {
    let mut c = *instr;
    match &mut c {
        Instruction::Alu { op, rd, rt, .. } => {
            if !op.writes_rd() {
                *rd = Reg::R0;
            }
            if !op.reads_rt() {
                *rt = Reg::R0;
            }
        }
        Instruction::AluImm { op, rd, .. } if !op.writes_rd() => {
            *rd = Reg::R0;
        }
        _ => {}
    }
    c
}

/// One representative of every instruction form with boundary operand
/// values, so coverage of each form never depends on random sampling.
fn all_forms() -> Vec<Instruction> {
    let mut forms = vec![
        Instruction::Nop,
        Instruction::Reti,
        Instruction::Stop,
        Instruction::Halt,
        Instruction::Brk,
    ];
    let awps = [AwpMode::None, AwpMode::Inc, AwpMode::Dec];
    for op in AluOp::ALL {
        for awp in awps {
            forms.push(Instruction::Alu {
                op,
                awp,
                rd: Reg::R3,
                rs: Reg::Sp,
                rt: Reg::G1,
            });
        }
    }
    for op in AluImmOp::ALL {
        for imm in [0u8, 1, 0x7f, 0xff] {
            forms.push(Instruction::AluImm {
                op,
                awp: AwpMode::None,
                rd: Reg::R1,
                rs: Reg::R2,
                imm,
            });
        }
    }
    for imm in [-2048i16, -1, 0, 1, 2047] {
        forms.push(Instruction::Ldi {
            awp: AwpMode::None,
            rd: Reg::R4,
            imm,
        });
    }
    forms.push(Instruction::Lui {
        rd: Reg::R5,
        imm: 0xab,
    });
    for offset in [-128i8, -1, 0, 127] {
        forms.push(Instruction::Ld {
            awp: AwpMode::None,
            rd: Reg::R0,
            base: Reg::R6,
            offset,
        });
        forms.push(Instruction::St {
            awp: AwpMode::None,
            src: Reg::R1,
            base: Reg::R6,
            offset,
        });
        forms.push(Instruction::Tset {
            rd: Reg::R2,
            base: Reg::R6,
            offset,
        });
    }
    for addr in [0u16, 1, 0x0fff] {
        forms.push(Instruction::Lda {
            awp: AwpMode::None,
            rd: Reg::R0,
            addr,
        });
        forms.push(Instruction::Sta {
            awp: AwpMode::None,
            src: Reg::R1,
            addr,
        });
        forms.push(Instruction::Fork {
            stream: 7,
            target: addr,
        });
    }
    for cond in Cond::ALL {
        forms.push(Instruction::Jmp {
            cond,
            target: 0xbeef,
        });
    }
    forms.push(Instruction::Call { target: 0xffff });
    for pop in [0u8, 1, 0xff] {
        forms.push(Instruction::Ret { pop });
    }
    for n in [0u8, 1, 0xff] {
        forms.push(Instruction::Winc { n });
        forms.push(Instruction::Wdec { n });
    }
    for bit in 0u8..8 {
        forms.push(Instruction::Signal { stream: 3, bit });
        forms.push(Instruction::Clri { bit });
    }
    forms
}

/// Exact round trip on a canonical instruction: the disassembled text
/// must reassemble to the identical 24-bit word, and the text itself is
/// a fixed point of disassemble∘assemble.
fn assert_exact_roundtrip(instr: &Instruction) {
    let c = canonical(instr);
    let word = encode::encode(&c);
    let text = disc_isa::disasm::format_instruction(&c);
    let program =
        Program::assemble(&text).unwrap_or_else(|e| panic!("`{text}` failed to assemble: {e}"));
    assert_eq!(
        program.len(),
        1,
        "`{text}` should assemble to exactly one word"
    );
    let reencoded = program.word(0);
    assert_eq!(
        reencoded, word,
        "`{text}` reassembled to {reencoded:#08x}, expected {word:#08x}"
    );
    let retext = disc_isa::disasm::format_instruction(&encode::decode(reencoded).unwrap());
    assert_eq!(retext, text, "textual form is not a fixed point");
}

#[test]
fn every_instruction_form_roundtrips_exactly() {
    for instr in all_forms() {
        assert_exact_roundtrip(&instr);
    }
}

proptest! {
    #[test]
    fn random_instructions_roundtrip_exactly(instr in arb_instruction()) {
        assert_exact_roundtrip(&instr);
    }

    #[test]
    fn encode_decode_roundtrip(instr in arb_instruction()) {
        let word = encode::encode(&instr);
        prop_assert_eq!(word & !disc_isa::INSTR_MASK, 0);
        prop_assert_eq!(encode::decode(word).unwrap(), instr);
    }

    #[test]
    fn disassemble_reassemble_roundtrip(instr in arb_instruction()) {
        let text = disc_isa::disasm::format_instruction(&instr);
        let program = Program::assemble(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to assemble: {e}"));
        let reencoded = program.word(0);
        // `cmp`/`mov`/`not` drop their unused field in textual form, so
        // compare decoded semantics rather than raw bits.
        let redecoded = encode::decode(reencoded).unwrap();
        prop_assert_eq!(redecoded.sources(), instr.sources());
        prop_assert_eq!(redecoded.destination(), instr.destination());
        prop_assert_eq!(redecoded.awp_mode(), instr.awp_mode());
        prop_assert_eq!(
            std::mem::discriminant(&redecoded),
            std::mem::discriminant(&instr)
        );
    }

    #[test]
    fn decode_never_panics(word in 0u32..=0x00ff_ffff) {
        let _ = encode::decode(word);
    }

    #[test]
    fn decoded_instructions_reencode_identically(word in 0u32..=0x00ff_ffff) {
        if let Ok(instr) = encode::decode(word) {
            let rew = encode::encode(&instr);
            // Re-encoding canonicalizes don't-care bits; decoding again must
            // give the same instruction.
            prop_assert_eq!(encode::decode(rew).unwrap(), instr);
        }
    }
}
