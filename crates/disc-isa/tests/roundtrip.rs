//! Property-based round-trip tests:
//! instruction → encode → decode → identical instruction, and
//! instruction → disassemble → assemble → identical encoding.

use disc_isa::{encode, AluImmOp, AluOp, AwpMode, Cond, Instruction, Program, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_awp() -> impl Strategy<Value = AwpMode> {
    prop_oneof![Just(AwpMode::None), Just(AwpMode::Inc), Just(AwpMode::Dec)]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

fn arb_alu_imm_op() -> impl Strategy<Value = AluImmOp> {
    (0usize..AluImmOp::ALL.len()).prop_map(|i| AluImmOp::ALL[i])
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0usize..Cond::ALL.len()).prop_map(|i| Cond::ALL[i])
}

prop_compose! {
    fn arb_alu()(op in arb_alu_op(), awp in arb_awp(), rd in arb_reg(),
                 rs in arb_reg(), rt in arb_reg()) -> Instruction {
        Instruction::Alu { op, awp, rd, rs, rt }
    }
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Nop),
        arb_alu(),
        (
            arb_alu_imm_op(),
            arb_awp(),
            arb_reg(),
            arb_reg(),
            any::<u8>()
        )
            .prop_map(|(op, awp, rd, rs, imm)| Instruction::AluImm {
                op,
                awp,
                rd,
                rs,
                imm
            }),
        (arb_awp(), arb_reg(), -2048i16..=2047)
            .prop_map(|(awp, rd, imm)| { Instruction::Ldi { awp, rd, imm } }),
        (arb_reg(), any::<u8>()).prop_map(|(rd, imm)| Instruction::Lui { rd, imm }),
        (arb_awp(), arb_reg(), arb_reg(), any::<i8>()).prop_map(|(awp, rd, base, offset)| {
            Instruction::Ld {
                awp,
                rd,
                base,
                offset,
            }
        }),
        (arb_awp(), arb_reg(), arb_reg(), any::<i8>()).prop_map(|(awp, src, base, offset)| {
            Instruction::St {
                awp,
                src,
                base,
                offset,
            }
        }),
        (arb_awp(), arb_reg(), 0u16..=0x0fff)
            .prop_map(|(awp, rd, addr)| { Instruction::Lda { awp, rd, addr } }),
        (arb_awp(), arb_reg(), 0u16..=0x0fff)
            .prop_map(|(awp, src, addr)| { Instruction::Sta { awp, src, addr } }),
        (arb_reg(), arb_reg(), any::<i8>())
            .prop_map(|(rd, base, offset)| { Instruction::Tset { rd, base, offset } }),
        (arb_cond(), any::<u16>()).prop_map(|(cond, target)| Instruction::Jmp { cond, target }),
        any::<u16>().prop_map(|target| Instruction::Call { target }),
        any::<u8>().prop_map(|pop| Instruction::Ret { pop }),
        Just(Instruction::Reti),
        any::<u8>().prop_map(|n| Instruction::Winc { n }),
        any::<u8>().prop_map(|n| Instruction::Wdec { n }),
        (0u8..8, 0u16..=0x0fff).prop_map(|(stream, target)| Instruction::Fork { stream, target }),
        (0u8..8, 0u8..8).prop_map(|(stream, bit)| Instruction::Signal { stream, bit }),
        (0u8..8).prop_map(|bit| Instruction::Clri { bit }),
        Just(Instruction::Stop),
        Just(Instruction::Halt),
        Just(Instruction::Brk),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(instr in arb_instruction()) {
        let word = encode::encode(&instr);
        prop_assert_eq!(word & !disc_isa::INSTR_MASK, 0);
        prop_assert_eq!(encode::decode(word).unwrap(), instr);
    }

    #[test]
    fn disassemble_reassemble_roundtrip(instr in arb_instruction()) {
        let text = disc_isa::disasm::format_instruction(&instr);
        let program = Program::assemble(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to assemble: {e}"));
        let reencoded = program.word(0);
        // `cmp`/`mov`/`not` drop their unused field in textual form, so
        // compare decoded semantics rather than raw bits.
        let redecoded = encode::decode(reencoded).unwrap();
        prop_assert_eq!(redecoded.sources(), instr.sources());
        prop_assert_eq!(redecoded.destination(), instr.destination());
        prop_assert_eq!(redecoded.awp_mode(), instr.awp_mode());
        prop_assert_eq!(
            std::mem::discriminant(&redecoded),
            std::mem::discriminant(&instr)
        );
    }

    #[test]
    fn decode_never_panics(word in 0u32..=0x00ff_ffff) {
        let _ = encode::decode(word);
    }

    #[test]
    fn decoded_instructions_reencode_identically(word in 0u32..=0x00ff_ffff) {
        if let Ok(instr) = encode::decode(word) {
            let rew = encode::encode(&instr);
            // Re-encoding canonicalizes don't-care bits; decoding again must
            // give the same instruction.
            prop_assert_eq!(encode::decode(rew).unwrap(), instr);
        }
    }
}
