//! Whole-stack fault-injection tests: a [`Machine`] driving a
//! [`PeripheralBus`] through a [`FaultInjector`], exercising the bus-fault
//! model end to end — including the canonical firmware pattern of a
//! watchdog kick loop surviving a stuck sensor.

use disc_bus::{PeripheralBus, SensorPort, Shared, Timer, Watchdog};
use disc_core::{BusFaultPolicy, Exit, Machine, MachineConfig, MachineStats, WaitState};
use disc_faults::{AddrRange, FaultInjector, FaultLog, FaultPlan, FaultWindow};
use disc_isa::Program;

const WATCHDOG_BASE: u16 = 0x800;
const SENSOR_BASE: u16 = 0x900;
const TIMER_BASE: u16 = 0xa00;

fn assemble(src: &str) -> Program {
    Program::assemble(src).expect("test program assembles")
}

/// Control-loop firmware: kick the watchdog, sample the sensor, record
/// progress, repeat. A bus error (bit 5) just resumes the loop.
const KICK_LOOP: &str = r#"
    .stream 0, main
    .vector 0, 5, buserr
main:
    ldi r3, 0
loop:
    sta r3, 0x800       ; kick the watchdog
    lda r1, 0x900       ; sample the sensor (may be stuck)
    sta r1, 0x20        ; latest sample
    addi r3, r3, 1
    sta r3, 0x21        ; progress counter
    jmp loop
buserr:
    reti
"#;

struct ControlRig {
    machine: Machine,
    watchdog: Shared<Watchdog>,
    sensor: Shared<SensorPort>,
    log: disc_faults::FaultLogHandle,
}

/// Builds machine + peripherals + injector for the kick-loop firmware.
fn control_rig(cfg: MachineConfig, plan: FaultPlan) -> ControlRig {
    let watchdog = Shared::new(Watchdog::new(300, 0, 7));
    let sensor = Shared::new(SensorPort::triangle(50, 5, 100));
    let mut bus = PeripheralBus::new();
    bus.map(WATCHDOG_BASE, Watchdog::REGS, Box::new(watchdog.handle()))
        .unwrap();
    bus.map(SENSOR_BASE, SensorPort::REGS, Box::new(sensor.handle()))
        .unwrap();
    let injector = FaultInjector::new(plan, Box::new(bus));
    let log = injector.log_handle();
    let machine = Machine::with_bus(cfg, &assemble(KICK_LOOP), Box::new(injector));
    ControlRig {
        machine,
        watchdog,
        sensor,
        log,
    }
}

fn stuck_sensor_plan() -> FaultPlan {
    FaultPlan::new(0xfee1_dead).stuck(
        AddrRange::new(SENSOR_BASE, SENSOR_BASE + SensorPort::REGS - 1),
        FaultWindow::between(1_000, 3_000),
    )
}

#[test]
fn kick_loop_survives_stuck_sensor_with_fault_policy() {
    let cfg = MachineConfig::disc1()
        .with_bus_fault(BusFaultPolicy::Fault)
        .with_abi_timeout(40);
    let mut rig = control_rig(cfg, stuck_sensor_plan());
    assert_eq!(rig.machine.run(6_000).unwrap(), Exit::CycleLimit);

    let log = rig.log.snapshot();
    assert!(log.stuck_probes > 0, "the fault window was exercised");
    assert!(
        rig.machine.stats().abi_timeouts >= 10,
        "each stuck read was cut off by the ABI timeout (got {})",
        rig.machine.stats().abi_timeouts
    );
    assert_eq!(
        rig.machine.stats().bus_faults[0],
        rig.machine.stats().abi_timeouts,
        "every timeout delivered a bus-error interrupt"
    );
    assert_eq!(
        rig.watchdog.borrow().bites(),
        0,
        "firmware kept kicking right through the fault"
    );
    assert!(rig.watchdog.borrow().kicks() > 50);
    let progress = rig.machine.internal_memory().read(0x21);
    assert!(
        progress > 100,
        "control loop kept iterating (progress {progress})"
    );
    assert!(rig.sensor.borrow().reads() > 0, "healthy reads completed");
}

#[test]
fn kick_loop_wedges_on_stuck_sensor_under_legacy_policy() {
    // Identical plan, identical firmware — only the policy differs. The
    // first stuck read parks the stream forever and the kicks stop.
    let mut rig = control_rig(MachineConfig::disc1(), stuck_sensor_plan());
    assert_eq!(rig.machine.run(6_000).unwrap(), Exit::CycleLimit);

    assert_eq!(
        rig.machine.stream(0).wait(),
        WaitState::BusTransaction,
        "stream is still parked on the dead transaction"
    );
    assert!(
        rig.watchdog.borrow().bites() >= 5,
        "unkicked watchdog kept biting (got {})",
        rig.watchdog.borrow().bites()
    );
    assert_eq!(rig.machine.stats().abi_timeouts, 0);
    assert_eq!(rig.machine.stats().bus_faults_total(), 0);

    // The recovered run made strictly more progress than the wedged one.
    let wedged = rig.machine.internal_memory().read(0x21);
    let cfg = MachineConfig::disc1()
        .with_bus_fault(BusFaultPolicy::Fault)
        .with_abi_timeout(40);
    let mut recovered = control_rig(cfg, stuck_sensor_plan());
    recovered.machine.run(6_000).unwrap();
    assert!(recovered.machine.internal_memory().read(0x21) > wedged);
}

#[test]
fn latency_inflation_slows_the_workload_down() {
    let run = |plan: FaultPlan| -> u64 {
        let mut rig = control_rig(
            MachineConfig::disc1()
                .with_bus_fault(BusFaultPolicy::Fault)
                .with_abi_timeout(200),
            plan,
        );
        rig.machine.run(4_000).unwrap();
        u64::from(rig.machine.internal_memory().read(0x21))
    };
    let healthy = run(FaultPlan::new(1));
    let degraded = run(FaultPlan::new(1).latency_add(
        AddrRange::new(SENSOR_BASE, SENSOR_BASE + SensorPort::REGS - 1),
        25,
        FaultWindow::always(),
    ));
    assert!(
        degraded < healthy,
        "inflated sensor latency must cost iterations ({degraded} vs {healthy})"
    );
    assert!(degraded > 0, "slower, but still making progress");
}

#[test]
fn blackout_window_raises_unmapped_bus_faults_then_clears() {
    let cfg = MachineConfig::disc1().with_bus_fault(BusFaultPolicy::Fault);
    let plan = FaultPlan::new(9).blackout(
        AddrRange::new(SENSOR_BASE, SENSOR_BASE + SensorPort::REGS - 1),
        FaultWindow::between(500, 1_500),
    );
    let mut rig = control_rig(cfg, plan);
    assert_eq!(rig.machine.run(4_000).unwrap(), Exit::CycleLimit);
    let log = rig.log.snapshot();
    assert!(log.blackouts > 0, "blackout was hit");
    assert!(rig.machine.stats().unmapped_accesses >= log.blackouts);
    assert!(
        rig.machine.stats().bus_faults[0] >= log.blackouts,
        "each blacked-out access faulted"
    );
    assert_eq!(rig.machine.stats().abi_timeouts, 0, "aborts, not timeouts");
    assert!(
        rig.machine.internal_memory().read(0x21) > 50,
        "loop survived the blackout window"
    );
}

/// Spin loop with one handler counting deliveries of IR bit 4.
const IRQ_COUNTER: &str = r#"
    .stream 0, main
    .vector 0, 4, tick
main:
    jmp main
tick:
    lda r2, 0x23
    addi r2, r2, 1
    sta r2, 0x23
    reti
"#;

#[test]
fn spurious_irqs_reach_the_handler() {
    let plan = FaultPlan::new(3).spurious_irq(0, 4, 500, FaultWindow::between(0, 4_001));
    let injector = FaultInjector::new(plan, Box::new(PeripheralBus::new()));
    let log = injector.log_handle();
    let mut m = Machine::with_bus(
        MachineConfig::disc1(),
        &assemble(IRQ_COUNTER),
        Box::new(injector),
    );
    assert_eq!(m.run(5_000).unwrap(), Exit::CycleLimit);
    assert_eq!(
        log.snapshot().spurious_irqs,
        8,
        "cycles 500..=4000, step 500"
    );
    assert_eq!(
        m.internal_memory().read(0x23),
        8,
        "every phantom interrupt vectored"
    );
}

#[test]
fn dropped_irqs_never_reach_the_handler() {
    let timer = Shared::new(Timer::periodic(400, 0, 4));
    let mut bus = PeripheralBus::new();
    bus.map(TIMER_BASE, Timer::REGS, Box::new(timer.handle()))
        .unwrap();
    let plan = FaultPlan::new(4).drop_irq(0, 4, 1.0, FaultWindow::always());
    let injector = FaultInjector::new(plan, Box::new(bus));
    let log = injector.log_handle();
    let mut m = Machine::with_bus(
        MachineConfig::disc1(),
        &assemble(IRQ_COUNTER),
        Box::new(injector),
    );
    assert_eq!(m.run(5_000).unwrap(), Exit::CycleLimit);
    assert!(timer.borrow().fires() >= 12);
    assert_eq!(
        log.snapshot().dropped_irqs,
        timer.borrow().fires(),
        "every timer interrupt was eaten"
    );
    assert_eq!(m.internal_memory().read(0x23), 0, "handler never ran");
}

#[test]
fn faulted_campaign_replays_byte_for_byte() {
    let campaign = || -> (MachineStats, FaultLog, Vec<u16>) {
        let plan = FaultPlan::new(0x5eed)
            .stuck(
                AddrRange::new(SENSOR_BASE, SENSOR_BASE + 1),
                FaultWindow::between(800, 1_600),
            )
            .bit_flip(
                AddrRange::new(SENSOR_BASE, SENSOR_BASE + 1),
                0x0101,
                0.3,
                FaultWindow::always(),
            )
            .latency_add(AddrRange::at(WATCHDOG_BASE), 3, FaultWindow::from(2_000))
            .spurious_irq(0, 4, 700, FaultWindow::always());
        let cfg = MachineConfig::disc1()
            .with_bus_fault(BusFaultPolicy::Fault)
            .with_abi_timeout(64);
        let mut rig = control_rig(cfg, plan);
        rig.machine.run(10_000).unwrap();
        let mem = (0x20..0x28)
            .map(|a| rig.machine.internal_memory().read(a))
            .collect();
        (rig.machine.stats().clone(), rig.log.snapshot(), mem)
    };
    let (stats_a, log_a, mem_a) = campaign();
    let (stats_b, log_b, mem_b) = campaign();
    assert_eq!(stats_a, stats_b, "machine statistics replay exactly");
    assert_eq!(log_a, log_b, "fault log replays exactly");
    assert_eq!(mem_a, mem_b, "memory effects replay exactly");
    assert!(log_a.total() > 0, "the campaign did inject faults");
    assert!(log_a.bit_flips > 0, "probabilistic faults fired too");
}
