//! Scriptable fault plans.
//!
//! A [`FaultPlan`] is a declarative list of faults, each scoped to an
//! address range and a cycle window, plus a seed for the probabilistic
//! faults. The plan is *data*, not behavior: the same plan applied by a
//! [`FaultInjector`](crate::FaultInjector) to the same workload reproduces
//! the same fault sequence byte for byte, which is what makes soak
//! campaigns debuggable — a failing seed can be replayed in isolation.

/// Inclusive external-bus address range `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrRange {
    start: u16,
    end: u16,
}

impl AddrRange {
    /// Range covering `start..=end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u16, end: u16) -> Self {
        assert!(start <= end, "address range start beyond its end");
        AddrRange { start, end }
    }

    /// Single-address range.
    pub fn at(addr: u16) -> Self {
        Self::new(addr, addr)
    }

    /// The full 16-bit external address space.
    pub fn all() -> Self {
        Self::new(0, u16::MAX)
    }

    /// First covered address.
    pub fn start(&self) -> u16 {
        self.start
    }

    /// Last covered address.
    pub fn end(&self) -> u16 {
        self.end
    }

    /// Whether `addr` falls inside the range.
    pub fn contains(&self, addr: u16) -> bool {
        (self.start..=self.end).contains(&addr)
    }
}

/// Half-open cycle window `[from, until)` during which a fault is active.
///
/// Cycles are counted by the injector's own [`tick`](disc_core::DataBus::
/// tick) counter, which the machine advances once per simulated cycle, so
/// windows line up with [`MachineStats::cycles`](disc_core::MachineStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    from: u64,
    until: u64,
}

impl FaultWindow {
    /// Active for the whole run.
    pub fn always() -> Self {
        FaultWindow {
            from: 0,
            until: u64::MAX,
        }
    }

    /// Active from cycle `from` to the end of the run.
    pub fn from(from: u64) -> Self {
        FaultWindow {
            from,
            until: u64::MAX,
        }
    }

    /// Active for cycles `from..until`.
    ///
    /// # Panics
    ///
    /// Panics if `from > until`.
    pub fn between(from: u64, until: u64) -> Self {
        assert!(from <= until, "fault window ends before it starts");
        FaultWindow { from, until }
    }

    /// First active cycle.
    pub fn start(&self) -> u64 {
        self.from
    }

    /// First cycle past the window (`u64::MAX` for open-ended windows).
    pub fn end(&self) -> u64 {
        self.until
    }

    /// Whether the window covers `cycle`.
    pub fn contains(&self, cycle: u64) -> bool {
        cycle >= self.from && cycle < self.until
    }
}

/// What a fault does while active. Address-scoped kinds consult the
/// fault's [`AddrRange`]; the interrupt kinds ignore it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Inflate the access latency of matching addresses by `cycles`
    /// (saturating). Models a degraded peripheral or a congested bridge.
    LatencyAdd {
        /// Extra cycles added to the underlying latency.
        cycles: u32,
    },
    /// Matching addresses report a latency of `u32::MAX`: the transaction
    /// starts but never completes. Without
    /// [`abi_timeout`](disc_core::MachineConfig::abi_timeout) this wedges
    /// the issuing stream (and starves the bus) forever.
    Stuck,
    /// Read data from matching addresses is XORed with `mask` with the
    /// given per-read probability. Models marginal signal integrity.
    BitFlip {
        /// Bits to invert when the flip triggers.
        mask: u16,
        /// Per-read flip probability in `[0.0, 1.0]`.
        probability: f64,
    },
    /// Matching addresses report as unmapped (`latency` returns `None`).
    /// Under [`BusFaultPolicy::Fault`](disc_core::BusFaultPolicy) the
    /// access aborts with a bus-error interrupt; under `Legacy` it
    /// completes with open-bus semantics.
    Blackout,
    /// Interrupt requests from the wrapped bus matching (`stream`, `bit`)
    /// are discarded with the given probability. Models a flaky interrupt
    /// line.
    DropIrq {
        /// Stream whose requests are eligible.
        stream: usize,
        /// IR bit whose requests are eligible.
        bit: u8,
        /// Per-request drop probability in `[0.0, 1.0]`.
        probability: f64,
    },
    /// A phantom interrupt (`stream`, `bit`) is injected every `interval`
    /// cycles while the window is active (first at the window start).
    /// Models EMI glitches on an interrupt line.
    SpuriousIrq {
        /// Stream to interrupt.
        stream: usize,
        /// IR bit to raise.
        bit: u8,
        /// Cycles between injections.
        interval: u64,
    },
}

/// One scheduled fault: a kind, the addresses it applies to, and the
/// cycle window during which it is live.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// What the fault does.
    pub kind: FaultKind,
    /// Addresses it applies to (ignored by the interrupt kinds).
    pub range: AddrRange,
    /// When it is active.
    pub window: FaultWindow,
}

/// A seeded, ordered collection of [`Fault`]s.
///
/// Build one with the fluent methods and hand it to
/// [`FaultInjector::new`](crate::FaultInjector::new):
///
/// ```
/// use disc_faults::{AddrRange, FaultPlan, FaultWindow};
///
/// let plan = FaultPlan::new(0xdead_beef)
///     .stuck(AddrRange::at(0x8000), FaultWindow::between(1_000, 2_000))
///     .bit_flip(AddrRange::new(0x9000, 0x90ff), 0x0004, 0.01, FaultWindow::always());
/// assert_eq!(plan.faults().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Empty plan with the given seed for the probabilistic faults.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds an arbitrary fault.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Adds a [`FaultKind::LatencyAdd`] fault.
    pub fn latency_add(self, range: AddrRange, cycles: u32, window: FaultWindow) -> Self {
        self.with(Fault {
            kind: FaultKind::LatencyAdd { cycles },
            range,
            window,
        })
    }

    /// Adds a [`FaultKind::Stuck`] fault.
    pub fn stuck(self, range: AddrRange, window: FaultWindow) -> Self {
        self.with(Fault {
            kind: FaultKind::Stuck,
            range,
            window,
        })
    }

    /// Adds a [`FaultKind::BitFlip`] fault.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0.0, 1.0]`.
    pub fn bit_flip(
        self,
        range: AddrRange,
        mask: u16,
        probability: f64,
        window: FaultWindow,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "flip probability out of range"
        );
        self.with(Fault {
            kind: FaultKind::BitFlip { mask, probability },
            range,
            window,
        })
    }

    /// Adds a [`FaultKind::Blackout`] fault.
    pub fn blackout(self, range: AddrRange, window: FaultWindow) -> Self {
        self.with(Fault {
            kind: FaultKind::Blackout,
            range,
            window,
        })
    }

    /// Adds a [`FaultKind::DropIrq`] fault.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0.0, 1.0]` or `bit >= 8`.
    pub fn drop_irq(self, stream: usize, bit: u8, probability: f64, window: FaultWindow) -> Self {
        assert!(bit < 8, "interrupt bit out of range");
        assert!(
            (0.0..=1.0).contains(&probability),
            "drop probability out of range"
        );
        self.with(Fault {
            kind: FaultKind::DropIrq {
                stream,
                bit,
                probability,
            },
            range: AddrRange::all(),
            window,
        })
    }

    /// Adds a [`FaultKind::SpuriousIrq`] fault.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `bit >= 8`.
    pub fn spurious_irq(self, stream: usize, bit: u8, interval: u64, window: FaultWindow) -> Self {
        assert!(bit < 8, "interrupt bit out of range");
        assert!(interval > 0, "spurious-irq interval must be nonzero");
        self.with(Fault {
            kind: FaultKind::SpuriousIrq {
                stream,
                bit,
                interval,
            },
            range: AddrRange::all(),
            window,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_containment() {
        let r = AddrRange::new(0x100, 0x1ff);
        assert!(r.contains(0x100));
        assert!(r.contains(0x1ff));
        assert!(!r.contains(0x0ff));
        assert!(!r.contains(0x200));
        assert!(AddrRange::at(0x42).contains(0x42));
        assert!(AddrRange::all().contains(0xffff));
    }

    #[test]
    #[should_panic(expected = "start beyond its end")]
    fn inverted_range_rejected() {
        let _ = AddrRange::new(2, 1);
    }

    #[test]
    fn window_containment() {
        let w = FaultWindow::between(10, 20);
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert!(FaultWindow::always().contains(0));
        assert!(FaultWindow::from(5).contains(u64::MAX - 1));
        assert!(!FaultWindow::from(5).contains(4));
    }

    #[test]
    fn builder_collects_in_order() {
        let plan = FaultPlan::new(7)
            .latency_add(AddrRange::at(1), 10, FaultWindow::always())
            .stuck(AddrRange::at(2), FaultWindow::from(100))
            .drop_irq(0, 5, 1.0, FaultWindow::always());
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.faults().len(), 3);
        assert!(matches!(
            plan.faults()[0].kind,
            FaultKind::LatencyAdd { cycles: 10 }
        ));
        assert!(matches!(plan.faults()[1].kind, FaultKind::Stuck));
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn bogus_probability_rejected() {
        let _ = FaultPlan::new(0).bit_flip(AddrRange::all(), 1, 1.5, FaultWindow::always());
    }
}
