//! The fault-injecting bus wrapper.

use std::cell::RefCell;
use std::rc::Rc;

use disc_core::{DataBus, IrqRequest};

use crate::plan::{FaultKind, FaultPlan};

/// Counters of every fault the injector actually delivered.
///
/// Obtained through a [`FaultLogHandle`]; campaigns assert on these to
/// prove the planned faults really happened (a soak run that "passes"
/// because the fault window missed the workload proves nothing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Latency probes answered with inflated latency.
    pub inflated_probes: u64,
    /// Latency probes answered "stuck" (`u32::MAX`).
    pub stuck_probes: u64,
    /// Latency probes answered "unmapped" by a blackout.
    pub blackouts: u64,
    /// Reads whose data had bits flipped.
    pub bit_flips: u64,
    /// Interrupt requests from the wrapped bus that were discarded.
    pub dropped_irqs: u64,
    /// Phantom interrupt requests injected.
    pub spurious_irqs: u64,
}

impl FaultLog {
    /// Total faults delivered, across every kind.
    pub fn total(&self) -> u64 {
        self.inflated_probes
            + self.stuck_probes
            + self.blackouts
            + self.bit_flips
            + self.dropped_irqs
            + self.spurious_irqs
    }

    /// Every counter with its stable name, in declaration order — the
    /// serialization contract run reports rely on.
    pub fn counters(&self) -> [(&'static str, u64); 6] {
        [
            ("inflated_probes", self.inflated_probes),
            ("stuck_probes", self.stuck_probes),
            ("blackouts", self.blackouts),
            ("bit_flips", self.bit_flips),
            ("dropped_irqs", self.dropped_irqs),
            ("spurious_irqs", self.spurious_irqs),
        ]
    }
}

/// Cloneable handle on a [`FaultInjector`]'s log, usable after the
/// injector (inside its machine) has been moved away.
#[derive(Debug, Clone)]
pub struct FaultLogHandle(Rc<RefCell<FaultLog>>);

impl FaultLogHandle {
    /// Copy of the counters as of now.
    pub fn snapshot(&self) -> FaultLog {
        *self.0.borrow()
    }
}

/// Deterministic 64-bit mixer (splitmix64 finalizer). Every probabilistic
/// decision hashes `(seed, fault index, cycle, address/key)` through this,
/// so outcomes depend only on the plan and the cycle-accurate access
/// pattern — never on host RNG state or call ordering.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `true` with probability `p` as a pure function of the inputs.
fn chance(seed: u64, fault: usize, cycle: u64, key: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    let h = mix(seed
        ^ (fault as u64).wrapping_mul(0xd6e8_feb8_6659_fd93)
        ^ cycle.wrapping_mul(0xa076_1d64_78bd_642f)
        ^ key.wrapping_mul(0xe703_7ed1_a0b4_28db));
    (h as f64) < p * (u64::MAX as f64)
}

/// A [`DataBus`] decorator that injects the faults scheduled by a
/// [`FaultPlan`] into an arbitrary wrapped bus.
///
/// The injector keeps its own cycle counter, advanced at the top of
/// [`tick`](DataBus::tick) so every probe within one machine cycle sees
/// the same cycle number. All decisions are derived by hashing
/// `(seed, fault, cycle, address)`, so two runs of the same machine with
/// the same plan produce byte-identical behavior and [`FaultLog`]s.
///
/// ```
/// use disc_core::FlatBus;
/// use disc_faults::{AddrRange, FaultInjector, FaultPlan, FaultWindow};
///
/// let plan = FaultPlan::new(1).stuck(AddrRange::at(0x8000), FaultWindow::from(500));
/// let injector = FaultInjector::new(plan, Box::new(FlatBus::new(2)));
/// let log = injector.log_handle();
/// // … Machine::with_bus(cfg, &program, Box::new(injector)) …
/// assert_eq!(log.snapshot().total(), 0);
/// ```
pub struct FaultInjector {
    inner: Box<dyn DataBus>,
    plan: FaultPlan,
    cycle: u64,
    log: Rc<RefCell<FaultLog>>,
    scratch: Vec<IrqRequest>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("cycle", &self.cycle)
            .field("log", &self.log.borrow())
            .finish_non_exhaustive()
    }
}

impl FaultInjector {
    /// Wraps `inner`, injecting the faults scheduled by `plan`.
    pub fn new(plan: FaultPlan, inner: Box<dyn DataBus>) -> Self {
        FaultInjector {
            inner,
            plan,
            cycle: 0,
            log: Rc::new(RefCell::new(FaultLog::default())),
            scratch: Vec::new(),
        }
    }

    /// Handle on the fault log, valid after the injector moves into a
    /// machine.
    pub fn log_handle(&self) -> FaultLogHandle {
        FaultLogHandle(Rc::clone(&self.log))
    }

    /// Cycles ticked so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The plan being applied.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl DataBus for FaultInjector {
    fn latency(&self, addr: u16, write: bool) -> Option<u32> {
        let cycle = self.cycle;
        // A blackout hides the address entirely — even from a peripheral
        // that would otherwise be stuck.
        for f in self.plan.faults() {
            if matches!(f.kind, FaultKind::Blackout)
                && f.window.contains(cycle)
                && f.range.contains(addr)
            {
                self.log.borrow_mut().blackouts += 1;
                return None;
            }
        }
        let base = self.inner.latency(addr, write)?;
        let mut latency = base;
        let mut stuck = false;
        let mut inflated = false;
        for f in self.plan.faults() {
            if !f.window.contains(cycle) || !f.range.contains(addr) {
                continue;
            }
            match f.kind {
                FaultKind::Stuck => stuck = true,
                FaultKind::LatencyAdd { cycles } => {
                    latency = latency.saturating_add(cycles);
                    inflated = true;
                }
                _ => {}
            }
        }
        if stuck {
            self.log.borrow_mut().stuck_probes += 1;
            return Some(u32::MAX);
        }
        if inflated {
            self.log.borrow_mut().inflated_probes += 1;
        }
        Some(latency)
    }

    fn read(&mut self, addr: u16) -> u16 {
        let mut value = self.inner.read(addr);
        let cycle = self.cycle;
        for (i, f) in self.plan.faults().iter().enumerate() {
            if let FaultKind::BitFlip { mask, probability } = f.kind {
                if f.window.contains(cycle)
                    && f.range.contains(addr)
                    && chance(self.plan.seed(), i, cycle, addr as u64, probability)
                {
                    value ^= mask;
                    self.log.borrow_mut().bit_flips += 1;
                }
            }
        }
        value
    }

    fn write(&mut self, addr: u16, value: u16) {
        // Data-corruption faults target the read path; writes pass
        // through (a blackout already stops them at the latency probe).
        self.inner.write(addr, value);
    }

    fn tick(&mut self, irqs: &mut Vec<IrqRequest>) {
        // Advance first so latency/read probes triggered later in this
        // same machine cycle agree with the interrupt decisions below.
        self.cycle += 1;
        let cycle = self.cycle;
        self.scratch.clear();
        self.inner.tick(&mut self.scratch);
        'requests: for (n, irq) in self.scratch.drain(..).enumerate() {
            for (i, f) in self.plan.faults().iter().enumerate() {
                if let FaultKind::DropIrq {
                    stream,
                    bit,
                    probability,
                } = f.kind
                {
                    if f.window.contains(cycle)
                        && irq.stream == stream
                        && irq.bit == bit
                        && chance(
                            self.plan.seed(),
                            i,
                            cycle,
                            // Distinguish multiple same-cycle requests.
                            (n as u64) << 32 | u64::from(bit),
                            probability,
                        )
                    {
                        self.log.borrow_mut().dropped_irqs += 1;
                        continue 'requests;
                    }
                }
            }
            irqs.push(irq);
        }
        for f in self.plan.faults() {
            if let FaultKind::SpuriousIrq {
                stream,
                bit,
                interval,
            } = f.kind
            {
                if f.window.contains(cycle) && (cycle - f.window.start()).is_multiple_of(interval) {
                    irqs.push(IrqRequest { stream, bit });
                    self.log.borrow_mut().spurious_irqs += 1;
                }
            }
        }
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        // The injector's counter advances at the top of `tick`, so the
        // tick during the machine step starting at `now` decides with
        // injector cycle `self.cycle + 1`; an injector-cycle target `ic`
        // maps back to machine cycle `now + (ic - (self.cycle + 1))`.
        let ic0 = self.cycle + 1;
        let to_machine = |ic: u64| now.saturating_add(ic - ic0);
        let mut next: Option<u64> = self.inner.next_event(now);
        let mut fold = |t: u64| next = Some(next.map_or(t, |n| n.min(t)));
        for f in self.plan.faults() {
            // Every window boundary is a wake point: a fault switching on
            // or off changes how subsequent probes and requests are
            // treated, so a skip never crosses one blindly.
            for boundary in [f.window.start(), f.window.end()] {
                if boundary >= ic0 && boundary != u64::MAX {
                    fold(to_machine(boundary));
                }
            }
            if let FaultKind::SpuriousIrq { interval, .. } = f.kind {
                let from = f.window.start();
                let fire = if ic0 <= from {
                    from
                } else {
                    (ic0 - from)
                        .div_ceil(interval)
                        .saturating_mul(interval)
                        .saturating_add(from)
                };
                if f.window.contains(fire) {
                    fold(to_machine(fire));
                }
            }
        }
        next
    }

    fn advance(&mut self, cycles: u64) {
        self.cycle += cycles;
        self.inner.advance(cycles);
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = disc_snap::SnapWriter::new();
        w.put_str("fault-injector");
        w.put_u64(self.plan.seed());
        w.put_usize(self.plan.faults().len());
        w.put_u64(self.cycle);
        let log = self.log.borrow();
        for (_, v) in log.counters() {
            w.put_u64(v);
        }
        w.put_bytes(&self.inner.save_state());
        w.into_bytes()
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), disc_snap::SnapError> {
        let mut r = disc_snap::SnapReader::new(state);
        r.expect_str("fault-injector")?;
        let seed = r.get_u64()?;
        let nfaults = r.get_usize()?;
        if seed != self.plan.seed() || nfaults != self.plan.faults().len() {
            return Err(disc_snap::SnapError::Corrupt(format!(
                "fault plan mismatch: injector (seed {}, {} faults), \
                 snapshot (seed {seed}, {nfaults} faults)",
                self.plan.seed(),
                self.plan.faults().len()
            )));
        }
        let cycle = r.get_u64()?;
        let log = FaultLog {
            inflated_probes: r.get_u64()?,
            stuck_probes: r.get_u64()?,
            blackouts: r.get_u64()?,
            bit_flips: r.get_u64()?,
            dropped_irqs: r.get_u64()?,
            spurious_irqs: r.get_u64()?,
        };
        self.inner.restore_state(r.get_bytes()?)?;
        r.finish()?;
        self.cycle = cycle;
        *self.log.borrow_mut() = log;
        self.scratch.clear();
        Ok(())
    }
}

/// The injector's only replayable randomness is its cycle cursor: every
/// probabilistic decision is a *pure hash* of
/// `(plan seed, fault index, cycle, address)`, so there is no evolving
/// generator state to capture. Restoring the cursor therefore resumes the
/// exact decision stream, which is what makes fault campaigns
/// snapshot-safe.
impl disc_snap::ReplayableRng for FaultInjector {
    fn rng_state(&self) -> Vec<u8> {
        let mut w = disc_snap::SnapWriter::new();
        w.put_u64(self.plan.seed());
        w.put_u64(self.cycle);
        w.into_bytes()
    }

    fn set_rng_state(&mut self, state: &[u8]) -> Result<(), disc_snap::SnapError> {
        let mut r = disc_snap::SnapReader::new(state);
        let seed = r.get_u64()?;
        if seed != self.plan.seed() {
            return Err(disc_snap::SnapError::Corrupt(format!(
                "fault seed mismatch: injector {}, state {seed}",
                self.plan.seed()
            )));
        }
        self.cycle = r.get_u64()?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AddrRange, FaultWindow};
    use disc_core::FlatBus;

    fn flat_injector(plan: FaultPlan) -> FaultInjector {
        FaultInjector::new(plan, Box::new(FlatBus::new(2)))
    }

    fn tick_to(inj: &mut FaultInjector, cycle: u64) -> Vec<IrqRequest> {
        let mut irqs = Vec::new();
        while inj.cycle() < cycle {
            inj.tick(&mut irqs);
        }
        irqs
    }

    #[test]
    fn passthrough_when_plan_is_empty() {
        let mut inj = flat_injector(FaultPlan::new(0));
        assert_eq!(inj.latency(0x1000, false), Some(2));
        inj.write(0x1000, 0xabcd);
        assert_eq!(inj.read(0x1000), 0xabcd);
        assert_eq!(inj.log_handle().snapshot().total(), 0);
    }

    #[test]
    fn latency_add_inflates_within_window() {
        let plan = FaultPlan::new(0).latency_add(
            AddrRange::new(0x1000, 0x10ff),
            7,
            FaultWindow::between(10, 20),
        );
        let mut inj = flat_injector(plan);
        assert_eq!(inj.latency(0x1000, false), Some(2), "before window");
        tick_to(&mut inj, 10);
        assert_eq!(inj.latency(0x1000, false), Some(9), "inside window");
        assert_eq!(inj.latency(0x2000, false), Some(2), "outside range");
        tick_to(&mut inj, 20);
        assert_eq!(inj.latency(0x1000, false), Some(2), "after window");
        assert_eq!(inj.log_handle().snapshot().inflated_probes, 1);
    }

    #[test]
    fn stuck_overrides_latency_add() {
        let plan = FaultPlan::new(0)
            .latency_add(AddrRange::at(0x100), 3, FaultWindow::always())
            .stuck(AddrRange::at(0x100), FaultWindow::always());
        let inj = flat_injector(plan);
        assert_eq!(inj.latency(0x100, false), Some(u32::MAX));
        assert_eq!(inj.log_handle().snapshot().stuck_probes, 1);
    }

    #[test]
    fn blackout_unmaps_and_wins_over_stuck() {
        let plan = FaultPlan::new(0)
            .stuck(AddrRange::at(0x100), FaultWindow::always())
            .blackout(AddrRange::at(0x100), FaultWindow::between(5, 10));
        let mut inj = flat_injector(plan);
        tick_to(&mut inj, 5);
        assert_eq!(inj.latency(0x100, false), None);
        tick_to(&mut inj, 10);
        assert_eq!(inj.latency(0x100, false), Some(u32::MAX));
        let log = inj.log_handle().snapshot();
        assert_eq!(log.blackouts, 1);
        assert_eq!(log.stuck_probes, 1);
    }

    #[test]
    fn certain_bit_flip_inverts_masked_bits() {
        let plan =
            FaultPlan::new(0).bit_flip(AddrRange::at(0x40), 0x8001, 1.0, FaultWindow::always());
        let mut inj = flat_injector(plan);
        inj.write(0x40, 0x0ff0);
        assert_eq!(inj.read(0x40), 0x8ff1);
        assert_eq!(inj.read(0x41), 0, "untargeted address unaffected");
        assert_eq!(inj.log_handle().snapshot().bit_flips, 1);
    }

    #[test]
    fn probabilistic_flips_are_reproducible() {
        let run = || {
            let plan = FaultPlan::new(42).bit_flip(AddrRange::all(), 1, 0.5, FaultWindow::always());
            let mut inj = flat_injector(plan);
            let mut seen = Vec::new();
            for c in 0..64u64 {
                tick_to(&mut inj, c + 1);
                seen.push(inj.read((c % 8) as u16));
            }
            (seen, inj.log_handle().snapshot())
        };
        let (a, la) = run();
        let (b, lb) = run();
        assert_eq!(a, b, "identical plans replay identically");
        assert_eq!(la, lb);
        assert!(la.bit_flips > 8 && la.bit_flips < 56, "p=0.5 flips some");
        // A different seed decides differently somewhere.
        let plan = FaultPlan::new(43).bit_flip(AddrRange::all(), 1, 0.5, FaultWindow::always());
        let mut inj = flat_injector(plan);
        let mut other = Vec::new();
        for c in 0..64u64 {
            tick_to(&mut inj, c + 1);
            other.push(inj.read((c % 8) as u16));
        }
        assert_ne!(a, other, "seed changes the outcome sequence");
    }

    /// Bus double whose tick raises one IRQ per cycle.
    struct Chatty;
    impl DataBus for Chatty {
        fn latency(&self, _a: u16, _w: bool) -> Option<u32> {
            Some(0)
        }
        fn read(&mut self, _a: u16) -> u16 {
            0
        }
        fn write(&mut self, _a: u16, _v: u16) {}
        fn tick(&mut self, irqs: &mut Vec<IrqRequest>) {
            irqs.push(IrqRequest { stream: 1, bit: 4 });
        }
    }

    #[test]
    fn drop_irq_discards_matching_requests() {
        let plan = FaultPlan::new(0).drop_irq(1, 4, 1.0, FaultWindow::between(0, 10));
        let mut inj = FaultInjector::new(plan, Box::new(Chatty));
        let irqs = tick_to(&mut inj, 30);
        assert_eq!(irqs.len(), 21, "only the windowed requests are dropped");
        assert_eq!(inj.log_handle().snapshot().dropped_irqs, 9);
    }

    #[test]
    fn drop_irq_ignores_other_lines() {
        let plan = FaultPlan::new(0).drop_irq(0, 4, 1.0, FaultWindow::always());
        let mut inj = FaultInjector::new(plan, Box::new(Chatty));
        let irqs = tick_to(&mut inj, 10);
        assert_eq!(irqs.len(), 10, "stream mismatch: nothing dropped");
    }

    #[test]
    fn spurious_irq_fires_on_its_interval() {
        let plan = FaultPlan::new(0).spurious_irq(2, 6, 4, FaultWindow::between(8, 21));
        let mut inj = flat_injector(plan);
        let irqs = tick_to(&mut inj, 40);
        let expect = IrqRequest { stream: 2, bit: 6 };
        assert_eq!(irqs, vec![expect; 4], "cycles 8, 12, 16, 20");
        assert_eq!(inj.log_handle().snapshot().spurious_irqs, 4);
    }

    #[test]
    fn counters_name_every_field_and_cover_total() {
        let log = FaultLog {
            inflated_probes: 1,
            stuck_probes: 2,
            blackouts: 3,
            bit_flips: 4,
            dropped_irqs: 5,
            spurious_irqs: 6,
        };
        let counters = log.counters();
        let sum: u64 = counters.iter().map(|(_, v)| v).sum();
        assert_eq!(sum, log.total(), "counters() must cover every field");
        let names: Vec<&str> = counters.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "inflated_probes",
                "stuck_probes",
                "blackouts",
                "bit_flips",
                "dropped_irqs",
                "spurious_irqs"
            ]
        );
    }

    #[test]
    fn injector_state_roundtrips_mid_window() {
        use disc_snap::ReplayableRng;
        let plan = || {
            FaultPlan::new(7)
                .bit_flip(AddrRange::all(), 1, 0.5, FaultWindow::always())
                .spurious_irq(2, 6, 4, FaultWindow::between(8, 60))
        };
        let mut inj = flat_injector(plan());
        inj.write(0x20, 0xaaaa);
        let _ = tick_to(&mut inj, 23);
        let _ = inj.read(0x20);
        let state = inj.save_state();
        let rng = inj.rng_state();

        let mut fresh = flat_injector(plan());
        fresh.restore_state(&state).expect("restore");
        assert_eq!(fresh.save_state(), state, "restored state re-serializes");
        assert_eq!(fresh.rng_state(), rng);
        // The decision streams must continue identically: same flips, same
        // spurious interrupts, same log.
        let a = tick_to(&mut inj, 70);
        let b = tick_to(&mut fresh, 70);
        assert_eq!(a, b);
        assert_eq!(inj.read(0x20), fresh.read(0x20));
        assert_eq!(inj.log_handle().snapshot(), fresh.log_handle().snapshot());

        let mut wrong = flat_injector(FaultPlan::new(8));
        assert!(wrong.restore_state(&state).is_err(), "plan mismatch");
        let mut cursor = flat_injector(plan());
        cursor.set_rng_state(&rng).expect("cursor restore");
        assert_eq!(cursor.cycle(), 23);
    }

    #[test]
    fn mix_is_a_bijective_scramble() {
        // Sanity: distinct inputs stay distinct and outputs look spread.
        let outs: Vec<u64> = (0..4).map(mix).collect();
        for i in 0..outs.len() {
            for j in i + 1..outs.len() {
                assert_ne!(outs[i], outs[j]);
            }
        }
        assert!(chance(1, 0, 0, 0, 1.0));
        assert!(!chance(1, 0, 0, 0, 0.0));
    }
}
