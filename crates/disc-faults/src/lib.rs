//! Deterministic fault injection for the DISC1 external bus.
//!
//! Real-time controllers earn their keep when the plant misbehaves: a
//! sensor stops answering, an interrupt line glitches, a bus transceiver
//! goes marginal. The DISC paper's isolation argument — a stream blocked
//! on slow I/O *"does not stall the processor, only that stream"* — is
//! exactly a claim about fault containment, and this crate exists to test
//! it mechanically.
//!
//! [`FaultInjector`] wraps any [`DataBus`](disc_core::DataBus) and applies
//! a scripted [`FaultPlan`]: latency inflation, peripherals stuck forever,
//! transient read-data bit flips, dropped and spurious interrupts, and
//! address-range blackouts, each scoped to an [`AddrRange`] and a
//! [`FaultWindow`] of cycles. Probabilistic faults are decided by hashing
//! `(seed, fault, cycle, address)`, never by a stateful RNG, so a
//! campaign seed replays **byte for byte** — the property that turns a
//! flaky soak failure into a unit test.
//!
//! Pair the injector with the machine's bus-fault model
//! ([`BusFaultPolicy::Fault`](disc_core::BusFaultPolicy) plus
//! [`abi_timeout`](disc_core::MachineConfig::abi_timeout)) to check that
//! firmware *recovers*; leave the machine on `Legacy` to demonstrate the
//! failure modes the fault model was built to fix.
//!
//! ```
//! use disc_core::FlatBus;
//! use disc_faults::{AddrRange, FaultInjector, FaultPlan, FaultWindow};
//!
//! // Sensor at 0x8000 wedges between cycles 1000 and 3000; IRQ line for
//! // (stream 2, bit 4) drops 20% of requests for the whole run.
//! let plan = FaultPlan::new(0xc0ffee)
//!     .stuck(AddrRange::at(0x8000), FaultWindow::between(1_000, 3_000))
//!     .drop_irq(2, 4, 0.2, FaultWindow::always());
//! let injector = FaultInjector::new(plan, Box::new(FlatBus::new(2)));
//! let log = injector.log_handle(); // survives the move into a Machine
//! # let _ = log;
//! ```

mod injector;
mod plan;

pub use injector::{FaultInjector, FaultLog, FaultLogHandle};
pub use plan::{AddrRange, Fault, FaultKind, FaultPlan, FaultWindow};
