//! Differential property testing: the DISC machine (one stream) and the
//! conventional baseline implement the *same* instruction set, so any
//! program free of stream-control and timing-observing instructions must
//! leave both machines in identical architectural state — registers,
//! flags, window stack and internal memory. Pipeline organization may
//! change *when* things happen, never *what* happens.

use disc::baseline::{BaselineConfig, BaselineMachine};
use disc::core::{Machine, MachineConfig};
use disc::isa::{AluImmOp, AluOp, AwpMode, Instruction, Program, ProgramBuilder, Reg};
use proptest::prelude::*;

/// Registers safe for random data flow (everything except IR/MR, whose
/// writes change activation semantics).
fn arb_data_reg() -> impl Strategy<Value = Reg> {
    (0u8..13).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_awp() -> impl Strategy<Value = AwpMode> {
    // Window motion is exercised via Winc/Wdec below; instruction-attached
    // adjustments stay balanced enough not to underflow constantly.
    prop_oneof![
        4 => Just(AwpMode::None),
        1 => Just(AwpMode::Inc),
        1 => Just(AwpMode::Dec),
    ]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    (0usize..AluOp::ALL.len()).prop_map(|i| AluOp::ALL[i])
}

fn arb_alu_imm_op() -> impl Strategy<Value = AluImmOp> {
    (0usize..AluImmOp::ALL.len()).prop_map(|i| AluImmOp::ALL[i])
}

/// Straight-line instructions with data-dependent but control-independent
/// behaviour: ALU traffic, window motion and internal-memory access.
fn arb_instr() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (
            arb_alu_op(),
            arb_awp(),
            arb_data_reg(),
            arb_data_reg(),
            arb_data_reg()
        )
            .prop_map(|(op, awp, rd, rs, rt)| Instruction::Alu {
                op,
                awp,
                rd,
                rs,
                rt
            }),
        (
            arb_alu_imm_op(),
            arb_awp(),
            arb_data_reg(),
            arb_data_reg(),
            any::<u8>()
        )
            .prop_map(|(op, awp, rd, rs, imm)| Instruction::AluImm {
                op,
                awp,
                rd,
                rs,
                imm
            }),
        (arb_awp(), arb_data_reg(), -2048i16..=2047).prop_map(|(awp, rd, imm)| Instruction::Ldi {
            awp,
            rd,
            imm
        }),
        (arb_data_reg(), any::<u8>()).prop_map(|(rd, imm)| Instruction::Lui { rd, imm }),
        // Internal memory only: direct addresses below the 1024-word size.
        (arb_awp(), arb_data_reg(), 0u16..1024).prop_map(|(awp, rd, addr)| Instruction::Lda {
            awp,
            rd,
            addr
        }),
        (arb_awp(), arb_data_reg(), 0u16..1024).prop_map(|(awp, src, addr)| Instruction::Sta {
            awp,
            src,
            addr
        }),
        (1u8..4).prop_map(|n| Instruction::Winc { n }),
        (1u8..4).prop_map(|n| Instruction::Wdec { n }),
        Just(Instruction::Nop),
    ]
}

fn build_program(body: &[Instruction]) -> Program {
    let mut b = ProgramBuilder::new();
    b.entry(0);
    b.emit_all(body.iter().copied());
    b.emit(Instruction::Halt);
    b.build()
}

fn run_disc(program: &Program) -> (Vec<u16>, Vec<u16>, usize) {
    let mut m = Machine::new(MachineConfig::disc1().with_streams(1), program);
    m.run(200_000).expect("disc run");
    assert!(m.halted(), "disc machine must reach halt");
    let regs = Reg::ALL.iter().map(|&r| m.reg(0, r)).collect();
    let mem = (0..64).map(|a| m.internal_memory().read(a)).collect();
    (regs, mem, m.stream(0).window().awp())
}

fn run_baseline(program: &Program) -> (Vec<u16>, Vec<u16>, usize) {
    let mut m = BaselineMachine::new(BaselineConfig::default(), program);
    m.run(200_000).expect("baseline run");
    let regs = Reg::ALL.iter().map(|&r| m.reg(r)).collect();
    let mem = (0..64).map(|a| m.internal_memory().read(a)).collect();
    (regs, mem, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// DISC (single stream) and the baseline agree on every architectural
    /// outcome of a random straight-line program.
    #[test]
    fn disc_and_baseline_agree(body in prop::collection::vec(arb_instr(), 1..60)) {
        let program = build_program(&body);
        let (disc_regs, disc_mem, _) = run_disc(&program);
        let (base_regs, base_mem, _) = run_baseline(&program);
        // IR differs by design (DISC stream activation vs baseline bit 0);
        // compare data registers, SP, SR.
        for (i, r) in Reg::ALL.iter().enumerate() {
            if matches!(r, Reg::Ir | Reg::Mr) {
                continue;
            }
            prop_assert_eq!(
                disc_regs[i], base_regs[i],
                "register {} diverged in {:?}", r, body
            );
        }
        prop_assert_eq!(disc_mem, base_mem, "memory diverged in {:?}", body);
    }

    /// Multistreaming is invisible to architectural results: the same
    /// program on stream 0 with three other busy streams resident ends in
    /// the same state as running alone.
    #[test]
    fn interleaving_preserves_single_stream_semantics(
        body in prop::collection::vec(arb_instr(), 1..40)
    ) {
        let alone = {
            let program = build_program(&body);
            run_disc(&program)
        };
        let shared = {
            let mut b = ProgramBuilder::new();
            b.org(0x100);
            b.entry(0);
            b.emit_all(body.iter().copied());
            b.emit(Instruction::Halt);
            // Three noisy companion streams running a jump-free treadmill
            // on global-free registers.
            for s in 1..4u8 {
                b.org(0x400 + s as u16 * 0x10);
                b.entry(s as usize);
                b.emit(Instruction::AluImm {
                    op: AluImmOp::Addi,
                    awp: AwpMode::None,
                    rd: Reg::R0,
                    rs: Reg::R0,
                    imm: 1,
                });
                let back = 0x400 + s as u16 * 0x10;
                b.emit(Instruction::Jmp {
                    cond: disc::isa::Cond::Always,
                    target: back,
                });
            }
            let program = b.build();
            let mut m = Machine::new(MachineConfig::disc1(), &program);
            m.run(400_000).expect("shared run");
            assert!(m.halted(), "halt reached under interleaving");
            let regs: Vec<u16> = Reg::ALL.iter().map(|&r| m.reg(0, r)).collect();
            let mem: Vec<u16> = (0..64).map(|a| m.internal_memory().read(a)).collect();
            (regs, mem, m.stream(0).window().awp())
        };
        // Globals are shared with companions? No — companions only touch
        // their own window R0, so everything must match.
        prop_assert_eq!(&alone.0, &shared.0, "registers diverged");
        prop_assert_eq!(&alone.1, &shared.1, "memory diverged");
        prop_assert_eq!(alone.2, shared.2, "window pointer diverged");
    }

    /// Random programs never wedge the machine: they either halt or hit
    /// the cycle limit with the exact instruction count retired.
    #[test]
    fn straight_line_programs_retire_exactly_once(
        body in prop::collection::vec(arb_instr(), 1..50)
    ) {
        let program = build_program(&body);
        let mut m = Machine::new(MachineConfig::disc1().with_streams(1), &program);
        m.run(200_000).expect("run");
        prop_assert!(m.halted());
        // Every instruction retires exactly once (halt itself may not
        // retire before the machine stops).
        let retired = m.stats().retired[0];
        prop_assert!(
            retired >= body.len() as u64 && retired <= body.len() as u64 + 1,
            "retired {} of {} instructions", retired, body.len()
        );
    }
}
