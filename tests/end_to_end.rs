//! Cross-crate integration tests exercised through the `disc` facade:
//! assembler → machine → peripherals → statistics, DISC versus baseline,
//! and consistency between the cycle-accurate machine and the stochastic
//! model.

use disc::baseline::{BaselineConfig, BaselineMachine};
use disc::bus::{PeripheralBus, SensorPort, Shared, Timer};
use disc::core::{Exit, Machine, MachineConfig, SchedulePolicy};
use disc::isa::Program;
use disc::stoch::{simulate, LoadSpec, RunConfig, Workload};

/// The same multi-tasked workload runs on DISC with 4 streams and
/// sequentially on the baseline; DISC finishes the batch in fewer cycles.
#[test]
fn disc_finishes_io_batch_faster_than_baseline() {
    // Four jobs, each: read a slow sensor 8 times and accumulate.
    let disc_src = r#"
        .stream 0, job0
        .stream 1, job1
        .stream 2, job2
        .stream 3, job3
    job0:
        ldi r4, 0
        lui r4, 0x90
        ldi r2, 8
        ldi r3, 0
    w0: ld r0, [r4]
        add r3, r3, r0
        subi r2, r2, 1
        jnz w0
        sta r3, 0x30
        stop
    job1:
        ldi r4, 0
        lui r4, 0x90
        ldi r2, 8
        ldi r3, 0
    w1: ld r0, [r4]
        add r3, r3, r0
        subi r2, r2, 1
        jnz w1
        sta r3, 0x31
        stop
    job2:
        ldi r4, 0
        lui r4, 0x90
        ldi r2, 8
        ldi r3, 0
    w2: ld r0, [r4]
        add r3, r3, r0
        subi r2, r2, 1
        jnz w2
        sta r3, 0x32
        stop
    job3:
        ldi r4, 0
        lui r4, 0x90
        ldi r2, 8
        ldi r3, 0
    w3: ld r0, [r4]
        add r3, r3, r0
        subi r2, r2, 1
        jnz w3
        sta r3, 0x33
        stop
    "#;
    // The baseline runs the same four jobs back to back.
    let baseline_src = r#"
        .stream 0, job0
    job0:
        ldi r4, 0
        lui r4, 0x90
        ldi r2, 8
        ldi r3, 0
    w0: ld r0, [r4]
        add r3, r3, r0
        subi r2, r2, 1
        jnz w0
        sta r3, 0x30
        nop
    job1:
        ldi r4, 0
        lui r4, 0x90
        ldi r2, 8
        ldi r3, 0
    w1: ld r0, [r4]
        add r3, r3, r0
        subi r2, r2, 1
        jnz w1
        sta r3, 0x31
        nop
    job2:
        ldi r4, 0
        lui r4, 0x90
        ldi r2, 8
        ldi r3, 0
    w2: ld r0, [r4]
        add r3, r3, r0
        subi r2, r2, 1
        jnz w2
        sta r3, 0x32
        nop
    job3:
        ldi r4, 0
        lui r4, 0x90
        ldi r2, 8
        ldi r3, 0
    w3: ld r0, [r4]
        add r3, r3, r0
        subi r2, r2, 1
        jnz w3
        sta r3, 0x33
        nop
        halt
    "#;
    let make_bus = || {
        let sensor = Shared::new(SensorPort::new(10, 12, |_| 5));
        let mut bus = PeripheralBus::new();
        bus.map(0x9000, SensorPort::REGS, Box::new(sensor.handle()))
            .unwrap();
        bus
    };

    let disc_program = Program::assemble(disc_src).unwrap();
    let mut disc = Machine::with_bus(MachineConfig::disc1(), &disc_program, Box::new(make_bus()));
    let exit = disc.run(200_000).unwrap();
    assert_eq!(exit, Exit::AllIdle);
    let disc_cycles = disc.cycle();

    let base_program = Program::assemble(baseline_src).unwrap();
    let mut base = BaselineMachine::with_bus(
        BaselineConfig::default(),
        &base_program,
        Box::new(make_bus()),
    );
    assert_eq!(base.run(200_000).unwrap(), Exit::Halted);
    let base_cycles = base.cycle();

    for addr in 0x30..=0x33 {
        assert_eq!(disc.internal_memory().read(addr), 40, "disc job result");
        assert_eq!(base.internal_memory().read(addr), 40, "baseline job result");
    }
    // The DISC batch overlaps I/O with the other streams' compute; the
    // baseline serializes everything. The single shared bus bounds the
    // speedup, but it must be clearly > 1.
    let speedup = base_cycles as f64 / disc_cycles as f64;
    assert!(
        speedup > 1.15,
        "expected DISC speedup on I/O batch, got {speedup:.2} ({disc_cycles} vs {base_cycles})"
    );
}

/// The cycle-accurate machine and the stochastic model agree on the
/// headline claim: adding streams to a jump-heavy workload raises
/// utilization, with the cycle-accurate gain in the same direction and
/// rough magnitude as the model's.
#[test]
fn stochastic_model_matches_cycle_accurate_trend() {
    // Cycle-accurate: a jumpy compute loop (~1/4 jump rate, no I/O).
    let src_for = |streams: usize| {
        let mut s = String::new();
        for i in 0..streams {
            s.push_str(&format!(
                ".stream {i}, l{i}\nl{i}:\n    addi r0, r0, 1\n    addi r1, r1, 1\n    \
                 addi r2, r2, 1\n    jmp l{i}\n"
            ));
        }
        s
    };
    let pd_machine = |streams: usize| {
        let program = Program::assemble(&src_for(streams)).unwrap();
        let mut m =
            Machine::new(
                MachineConfig::disc1().with_streams(streams).with_schedule(
                    SchedulePolicy::Sequence((0..streams as u8).collect::<Vec<_>>()),
                ),
                &program,
            );
        m.run(20_000).unwrap();
        m.stats().utilization()
    };
    // Stochastic: same jump rate, no I/O.
    let spec = LoadSpec::load3().with_aljmp(0.25);
    let pd_model = |streams: usize| {
        let cfg = RunConfig::new(Workload::partitioned(&spec, streams)).with_cycles(60_000);
        simulate(&cfg).pd()
    };

    let (m1, m4) = (pd_machine(1), pd_machine(4));
    let (s1, s4) = (pd_model(1), pd_model(4));
    assert!(m4 > m1 + 0.15, "machine gain: {m1:.3} -> {m4:.3}");
    assert!(s4 > s1 + 0.15, "model gain: {s1:.3} -> {s4:.3}");
    assert!(m4 > 0.95 && s4 > 0.95, "both saturate at 4 streams");
    // Single-stream utilizations agree within modeling tolerance (the
    // machine also pays data-hazard stalls the model omits).
    assert!(
        (m1 - s1).abs() < 0.25,
        "single-stream PD: machine {m1:.3} vs model {s1:.3}"
    );
}

/// Timer-driven control loop through the facade: a timer activates a
/// handler stream which samples a sensor and accumulates, while the
/// background stream keeps a counter running.
#[test]
fn timer_sensor_control_loop() {
    let program = Program::assemble(
        r#"
        .stream 0, bg
        .stream 1, idle
        .vector 1, 5, sample
    bg: addi r0, r0, 1
        jmp bg
    idle:
        stop
    sample:
        ldi r1, 0
        lui r1, 0x91
        ld  r2, [r1]
        lda r3, 0x50
        add r3, r3, r2
        sta r3, 0x50
        lda r4, 0x51
        addi r4, r4, 1
        sta r4, 0x51
        reti
    "#,
    )
    .unwrap();
    let timer = Shared::new(Timer::periodic(250, 1, 5));
    let sensor = Shared::new(SensorPort::new(100, 20, |_| 3));
    let mut bus = PeripheralBus::new();
    bus.map(0x9000, Timer::REGS, Box::new(timer.handle()))
        .unwrap();
    bus.map(0x9100, SensorPort::REGS, Box::new(sensor.handle()))
        .unwrap();
    let mut m = Machine::with_bus(
        MachineConfig::disc1().with_streams(2),
        &program,
        Box::new(bus),
    );
    m.set_idle_exit(false);
    m.set_reg(1, disc::isa::Reg::Ir, 0);
    m.run(5_000).unwrap();

    let samples = m.internal_memory().read(0x51);
    let sum = m.internal_memory().read(0x50);
    assert_eq!(timer.borrow().fires(), 20);
    assert!((19..=20).contains(&samples), "samples {samples}");
    assert_eq!(sum, samples * 3);
    assert!(m.stats().retired[0] > 2_000, "background kept most slots");
}

/// Facade re-exports stay wired together: every crate is reachable and the
/// core types interoperate.
#[test]
fn facade_reexports_interoperate() {
    let t = disc::stoch::tables::table_4_1();
    assert_eq!(t.rows().len(), 4);
    let report = disc::rts::latency_experiment(1, 5, 100).unwrap();
    assert_eq!(report.disc.len(), 5);
    let shares = disc::rts::partition::allocate_shares(&[1.0, 1.0]);
    assert_eq!(shares, vec![8, 8]);
}
