# Convenience targets for the DISC reproduction.

.PHONY: all test bench bench-check bench-micro profile repro repro-quick soak soak-resume fuzz fuzz-long reports docs clippy examples clean

all: test

test:
	cargo test --workspace

# Simulator-throughput benchmark: writes BENCH_core.json at the repo root
# with simulated cycles/sec for four workloads in both step modes next to
# the recorded seed baseline (see EXPERIMENTS.md "Performance").
bench:
	cargo run --release -p disc-bench --bin bench_core

# Perf-regression gate: quick re-measure of every workload (median of 3
# reps, so one noisy rep cannot fake a regression), exit 1 if any rate
# drops >25% below the committed BENCH_core.json baseline.
# DISC_DISPATCH=legacy|superblock selects which dispatcher is measured
# and which baseline column gates it (default: superblock). CI runs both
# after the bench smoke step.
bench-check:
	DISC_BENCH_REPS=3 cargo run --release -p disc-bench --bin bench_core -- --check

bench-micro:
	cargo bench --workspace

# Profiler wrapper over the bench hot path: builds the single-workload
# profile_target with the `profiling` profile (release codegen + debug
# symbols) and runs it under whichever sampling profiler the machine has
# (perf, then gprofng), falling back to a plain timed run when neither is
# installed. `make profile WORKLOAD=branch CYCLES=20000000` selects the
# workload (compute|branch|io|irq) and cycle count;
# DISC_DISPATCH=legacy profiles the legacy dispatcher instead.
WORKLOAD ?= compute
CYCLES ?= 50000000
profile:
	cargo build --profile profiling -p disc-bench --bin profile_target
	@if command -v perf >/dev/null 2>&1; then \
		perf record -g --output profile.perf.data -- \
			target/profiling/profile_target $(WORKLOAD) $(CYCLES) && \
		perf report --input profile.perf.data --stdio | head -40; \
	elif command -v gprofng >/dev/null 2>&1; then \
		rm -rf profile.er && \
		gprofng collect app -o profile.er \
			target/profiling/profile_target $(WORKLOAD) $(CYCLES) && \
		gprofng display text -functions profile.er | head -40; \
	else \
		echo "no perf/gprofng on PATH; plain timed run:"; \
		target/profiling/profile_target $(WORKLOAD) $(CYCLES); \
	fi

# Full reproduction of every table/figure/experiment (writes CSV exports).
repro:
	cargo run --release -p disc-bench --bin repro_all -- --csv results

repro-quick:
	cargo run --release -p disc-bench --bin repro_all -- --quick --csv results

# Bounded isolation soak: 100 seeded fault-injection campaigns over the
# RT workload (see EXPERIMENTS.md "Fault campaigns"). Fixed seeds, exit 1
# on any isolation-invariant violation; DISC_JOBS caps the fan-out.
soak:
	cargo run --release -p disc-bench --bin soak

# Crash-resumption smoke: SIGKILL a checkpointed soak campaign
# mid-flight, resume it from its journal, and require the resumed run
# report to match an uninterrupted baseline byte for byte (wall-clock
# throughput and resume accounting aside).
soak-resume:
	cargo build --release -p disc-bench --bin soak
	bash scripts/soak_resume_smoke.sh

# Differential fuzzing against the disc-ref golden-reference interpreter
# (see EXPERIMENTS.md "Conformance fuzzing"). `fuzz` replays the
# regression corpus plus 1000 fixed seeds and exits 1 on any divergence;
# `fuzz-long` runs a 100k-seed campaign. A failing seed is minimized,
# printed, and replays with
# `cargo run --release -p disc-bench --bin fuzz -- --no-corpus --seed <seed> --count 1`.
fuzz:
	cargo run --release -p disc-bench --bin fuzz -- --seed 0 --count 1000

fuzz-long:
	cargo run --release -p disc-bench --bin fuzz -- --seed 0 --count 100000

# Structured run reports (schema disc-run-report/v3) under results/:
# the quick reproduction pass, a short soak campaign, and the
# observability demo. CI schema-checks every results/*.report.json and
# uploads them as workflow artifacts.
reports:
	cargo run --release -p disc-bench --bin repro_all -- --quick --csv results
	cargo run --release -p disc-bench --bin soak -- --runs 10 --report results/soak.report.json
	cargo run --release --example obs_demo

docs:
	cargo doc --workspace --no-deps

clippy:
	cargo clippy --workspace --all-targets

examples:
	cargo build --examples --release
	cargo run --release --example quickstart
	cargo run --release --example engine_controller
	cargo run --release --example producer_consumer
	cargo run --release --example interrupt_latency
	cargo run --release --example dsp_filter
	cargo run --release --example rms_monitor
	cargo run --release --example compiled_script
	cargo run --release --example stochastic_study

clean:
	cargo clean
	rm -rf results profile.er profile.perf.data
