# Convenience targets for the DISC reproduction.

.PHONY: all test bench bench-check bench-micro repro repro-quick soak fuzz fuzz-long reports docs clippy examples clean

all: test

test:
	cargo test --workspace

# Simulator-throughput benchmark: writes BENCH_core.json at the repo root
# with simulated cycles/sec for four workloads in both step modes next to
# the recorded seed baseline (see EXPERIMENTS.md "Performance").
bench:
	cargo run --release -p disc-bench --bin bench_core

# Perf-regression gate: quick single-rep re-measure of every workload,
# exit 1 if any cycle-by-cycle rate drops >25% below the committed
# BENCH_core.json baseline. Used by CI after the bench smoke step.
bench-check:
	DISC_BENCH_REPS=1 cargo run --release -p disc-bench --bin bench_core -- --check

bench-micro:
	cargo bench --workspace

# Full reproduction of every table/figure/experiment (writes CSV exports).
repro:
	cargo run --release -p disc-bench --bin repro_all -- --csv results

repro-quick:
	cargo run --release -p disc-bench --bin repro_all -- --quick --csv results

# Bounded isolation soak: 100 seeded fault-injection campaigns over the
# RT workload (see EXPERIMENTS.md "Fault campaigns"). Fixed seeds, exit 1
# on any isolation-invariant violation; DISC_JOBS caps the fan-out.
soak:
	cargo run --release -p disc-bench --bin soak

# Differential fuzzing against the disc-ref golden-reference interpreter
# (see EXPERIMENTS.md "Conformance fuzzing"). `fuzz` replays the
# regression corpus plus 1000 fixed seeds and exits 1 on any divergence;
# `fuzz-long` runs a 100k-seed campaign. A failing seed is minimized,
# printed, and replays with
# `cargo run --release -p disc-bench --bin fuzz -- --no-corpus --seed <seed> --count 1`.
fuzz:
	cargo run --release -p disc-bench --bin fuzz -- --seed 0 --count 1000

fuzz-long:
	cargo run --release -p disc-bench --bin fuzz -- --seed 0 --count 100000

# Structured run reports (schema disc-run-report/v2) under results/:
# the quick reproduction pass, a short soak campaign, and the
# observability demo. CI schema-checks every results/*.report.json and
# uploads them as workflow artifacts.
reports:
	cargo run --release -p disc-bench --bin repro_all -- --quick --csv results
	cargo run --release -p disc-bench --bin soak -- --runs 10 --report results/soak.report.json
	cargo run --release --example obs_demo

docs:
	cargo doc --workspace --no-deps

clippy:
	cargo clippy --workspace --all-targets

examples:
	cargo build --examples --release
	cargo run --release --example quickstart
	cargo run --release --example engine_controller
	cargo run --release --example producer_consumer
	cargo run --release --example interrupt_latency
	cargo run --release --example dsp_filter
	cargo run --release --example rms_monitor
	cargo run --release --example compiled_script
	cargo run --release --example stochastic_study

clean:
	cargo clean
	rm -rf results
